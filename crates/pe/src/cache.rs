//! The PE's SRAM packet cache.
//!
//! Packets whose OP-ID is ahead of the PE's operation counter are parked in
//! a 2.5 KB SRAM organized as 16 sub-banks; a packet with OP-ID `o` lands in
//! sub-bank `o mod 16` (§V-B, Fig. 11(b)). Each sub-bank holds up to 64
//! entries, and retrieving the entries for the next operation is a *full
//! search* of one sub-bank costing between 16 and 64 cycles depending on
//! occupancy — a cost the PE model charges against the next firing.
//!
//! The storage is struct-of-arrays: one flat packet array with a length
//! counter per sub-bank, so an insert is a bounds check plus one store and
//! the total occupancy is a running counter rather than a 16-bank scan.
//! (`try_insert` sits on the per-delivery hot path — the NoC hands a
//! saturated PE roughly one packet per cycle.)

use neurocube_noc::{Packet, PacketKind};

/// Number of cache sub-banks (one per OP-ID residue class).
pub const CACHE_SUB_BANKS: usize = 16;

/// Maximum entries per sub-bank ("max 64 entries", §V-B).
pub const SUB_BANK_ENTRIES: usize = 64;

/// Filler for never-written slots of the flat bank array.
const EMPTY_SLOT: Packet = Packet {
    dst: 0,
    src: 0,
    mac_id: 0,
    op_id: 0,
    kind: PacketKind::State,
    data: 0,
};

/// The out-of-order packet cache.
#[derive(Clone, Debug)]
pub struct PacketCache {
    /// Flat sub-bank storage: bank `b` owns
    /// `slots[b * entries_per_bank .. b * entries_per_bank + len[b]]`.
    slots: Vec<Packet>,
    len: [u16; CACHE_SUB_BANKS],
    entries_per_bank: usize,
    total: usize,
    high_water: usize,
}

impl Default for PacketCache {
    fn default() -> PacketCache {
        PacketCache::new()
    }
}

impl PacketCache {
    /// An empty cache with the paper's 64-entry sub-banks.
    pub fn new() -> PacketCache {
        PacketCache::with_capacity(SUB_BANK_ENTRIES)
    }

    /// An empty cache with `entries_per_bank`-entry sub-banks (the sizing
    /// ablation; the paper's design point is [`SUB_BANK_ENTRIES`]).
    ///
    /// # Panics
    ///
    /// Panics if `entries_per_bank` is zero.
    pub fn with_capacity(entries_per_bank: usize) -> PacketCache {
        assert!(entries_per_bank > 0, "sub-banks need capacity");
        PacketCache {
            slots: vec![EMPTY_SLOT; entries_per_bank * CACHE_SUB_BANKS],
            len: [0; CACHE_SUB_BANKS],
            entries_per_bank,
            total: 0,
            high_water: 0,
        }
    }

    /// The sub-bank a packet with `op_id` maps to.
    #[inline]
    pub fn bank_of(op_id: u8) -> usize {
        usize::from(op_id) % CACHE_SUB_BANKS
    }

    /// Inserts a packet; `false` (with no state change) when its sub-bank is
    /// full — the PE must then stop accepting packets from the NoC, which is
    /// exactly the backpressure path that throttles a too-fast PNG.
    pub fn try_insert(&mut self, pkt: Packet) -> bool {
        let bank = Self::bank_of(pkt.op_id);
        let n = usize::from(self.len[bank]);
        if n >= self.entries_per_bank {
            return false;
        }
        self.slots[bank * self.entries_per_bank + n] = pkt;
        self.len[bank] = (n + 1) as u16;
        self.total += 1;
        self.high_water = self.high_water.max(self.total);
        true
    }

    /// Removes and returns every cached packet with the given OP-ID, and the
    /// cycle cost of the full sub-bank search that found them:
    /// `max(16, entries scanned)`.
    pub fn take_matching(&mut self, op_id: u8) -> (Vec<Packet>, u64) {
        let mut hits = Vec::new();
        let cost = self.take_matching_into(op_id, &mut hits);
        (hits, cost)
    }

    /// Like [`take_matching`](Self::take_matching), but appends the hits to
    /// a caller-owned buffer (the PE reuses one scratch vector across
    /// firings to keep the fire path allocation-free).
    pub fn take_matching_into(&mut self, op_id: u8, hits: &mut Vec<Packet>) -> u64 {
        let bank = Self::bank_of(op_id);
        let base = bank * self.entries_per_bank;
        let scanned = usize::from(self.len[bank]);
        // In-place compaction preserving residual order, exactly like the
        // `Vec::retain` the AoS layout used.
        let mut kept = 0usize;
        for i in 0..scanned {
            let p = self.slots[base + i];
            if p.op_id == op_id {
                hits.push(p);
            } else {
                self.slots[base + kept] = p;
                kept += 1;
            }
        }
        self.len[bank] = kept as u16;
        self.total -= scanned - kept;
        scanned.max(CACHE_SUB_BANKS) as u64
    }

    /// Total buffered packets across all sub-banks.
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.total
    }

    /// Highest total occupancy ever observed (sizing statistic).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// `true` when nothing is cached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Diagnostic: the `(src, mac, data)` of entries with the given OP-ID.
    pub fn debug_entries(&self, op_id: u8) -> Vec<(u8, u8, u16)> {
        let bank = Self::bank_of(op_id);
        let base = bank * self.entries_per_bank;
        self.slots[base..base + usize::from(self.len[bank])]
            .iter()
            .filter(|p| p.op_id == op_id)
            .map(|p| (p.src, p.mac_id, p.data))
            .collect()
    }

    /// Free slots in the sub-bank that `op_id` maps to.
    pub fn free_in_bank(&self, op_id: u8) -> usize {
        self.entries_per_bank - usize::from(self.len[Self::bank_of(op_id)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube_noc::PacketKind;

    fn pkt(op_id: u8, mac_id: u8) -> Packet {
        Packet {
            dst: 0,
            src: 0,
            mac_id,
            op_id,
            kind: PacketKind::State,
            data: u16::from(op_id),
        }
    }

    #[test]
    fn packets_land_in_op_mod_16_banks() {
        assert_eq!(PacketCache::bank_of(0), 0);
        assert_eq!(PacketCache::bank_of(17), 1);
        assert_eq!(PacketCache::bank_of(255), 15);
    }

    #[test]
    fn take_matching_filters_by_exact_op() {
        let mut c = PacketCache::new();
        assert!(c.try_insert(pkt(3, 0)));
        assert!(c.try_insert(pkt(19, 1))); // same bank (3 mod 16)
        assert!(c.try_insert(pkt(3, 2)));
        let (hits, cost) = c.take_matching(3);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|p| p.op_id == 3));
        assert_eq!(cost, 16); // min search cost
        assert_eq!(c.occupancy(), 1); // op 19 remains
    }

    #[test]
    fn take_matching_preserves_residual_order() {
        let mut c = PacketCache::new();
        for (op, mac) in [(3u8, 0u8), (19, 1), (3, 2), (19, 3), (35, 4)] {
            assert!(c.try_insert(pkt(op, mac)));
        }
        let _ = c.take_matching(3);
        let (hits, _) = c.take_matching(19);
        assert_eq!(
            hits.iter().map(|p| p.mac_id).collect::<Vec<_>>(),
            vec![1, 3],
            "compaction must keep insertion order"
        );
        let (hits, _) = c.take_matching(35);
        assert_eq!(hits[0].mac_id, 4);
        assert!(c.is_empty());
    }

    #[test]
    fn search_cost_scales_with_bank_occupancy() {
        let mut c = PacketCache::new();
        for i in 0..40u8 {
            // All in bank 0: op ids 0, 16, 32, ... mod 256 cycling; use 0 and
            // 16 alternating to stay in bank 0.
            let op = if i % 2 == 0 { 0 } else { 16 };
            assert!(c.try_insert(pkt(op, i)));
        }
        let (hits, cost) = c.take_matching(0);
        assert_eq!(hits.len(), 20);
        assert_eq!(cost, 40);
    }

    #[test]
    fn sub_bank_capacity_enforced() {
        let mut c = PacketCache::new();
        for i in 0..SUB_BANK_ENTRIES {
            assert!(c.try_insert(pkt(16, i as u8)), "entry {i}");
        }
        assert!(!c.try_insert(pkt(16, 0)));
        // Another bank still has room.
        assert!(c.try_insert(pkt(1, 0)));
        assert_eq!(c.free_in_bank(16), 0);
        assert_eq!(c.free_in_bank(1), SUB_BANK_ENTRIES - 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut c = PacketCache::new();
        for op in 0..8u8 {
            let _ = c.try_insert(pkt(op, 0));
        }
        let _ = c.take_matching(0);
        let _ = c.take_matching(1);
        assert_eq!(c.occupancy(), 6);
        assert_eq!(c.high_water(), 8);
        assert!(!c.is_empty());
    }
}
