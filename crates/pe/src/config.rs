//! Per-layer PE configuration, loaded by the global controller before a
//! layer starts (§IV-C).

/// Where each operation's input states come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateMode {
    /// One state packet per MAC per operation (conv/pool dataflow).
    PerMac,
    /// One broadcast state shared by all MACs per operation (fully
    /// connected dataflow).
    Shared,
}

/// Where each operation's weights come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightMode {
    /// Weights live in the PE weight register file, duplicated across all
    /// PEs (§III-B-2: "if the size of synaptic weights matrix is small all
    /// weights are stored in PE weight memory"). At operation `k` of a
    /// neuron group in weight row `r`, every MAC reads
    /// `weights[r * weights_per_neuron + k]`.
    Local {
        /// Weights per output neuron (kernel² for conv).
        weights_per_neuron: u32,
        /// Rows in the weight memory (output maps for conv; 1 if all maps
        /// share one row, as pooling's constant does).
        rows: u32,
    },
    /// One weight packet per MAC per operation (fully connected dataflow —
    /// the weight matrix streams from the vault).
    Stream,
}

/// The registers the host programs into a PE for one layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeLayerConfig {
    /// MAC units in this PE (the paper's design point is 16).
    pub n_mac: u32,
    /// Connections per output neuron — operations per neuron group.
    pub conns_per_neuron: u32,
    /// Output neurons assigned to this PE, per output map.
    pub neurons_per_map: u64,
    /// Output maps this PE computes (each map advances the weight row).
    pub maps: u32,
    /// State sourcing.
    pub states: StateMode,
    /// Weight sourcing.
    pub weights: WeightMode,
}

impl PeLayerConfig {
    /// Total output neurons this PE computes for the layer.
    pub fn total_neurons(&self) -> u64 {
        self.neurons_per_map * u64::from(self.maps)
    }

    /// Neuron groups (MAC-array firings × connections) per output map.
    pub fn groups_per_map(&self) -> u64 {
        self.neurons_per_map.div_ceil(u64::from(self.n_mac))
    }

    /// Total neuron groups for the layer.
    pub fn total_groups(&self) -> u64 {
        self.groups_per_map() * u64::from(self.maps)
    }

    /// Active MACs in group `group` (the last group of each map may be
    /// partial).
    pub fn active_macs(&self, group: u64) -> u32 {
        debug_assert!(group < self.total_groups());
        let gpm = self.groups_per_map();
        if (group + 1).is_multiple_of(gpm) {
            let rem = self.neurons_per_map - (gpm - 1) * u64::from(self.n_mac);
            rem as u32
        } else {
            self.n_mac
        }
    }

    /// The weight row used by group `group` (output map index, clamped to
    /// the available rows).
    pub fn weight_row(&self, group: u64) -> u32 {
        let map = (group / self.groups_per_map()) as u32;
        match self.weights {
            WeightMode::Local { rows, .. } => map.min(rows.saturating_sub(1)),
            WeightMode::Stream => map,
        }
    }

    /// Total MAC operations this PE will perform for the layer.
    pub fn total_macs(&self) -> u64 {
        self.total_neurons() * u64::from(self.conns_per_neuron)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a zero MAC count, zero connections or zero neurons.
    pub fn validate(&self) {
        assert!(self.n_mac > 0, "n_mac must be nonzero");
        assert!(self.conns_per_neuron > 0, "connections must be nonzero");
        assert!(self.total_neurons() > 0, "a configured PE must own neurons");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(neurons_per_map: u64, maps: u32) -> PeLayerConfig {
        PeLayerConfig {
            n_mac: 16,
            conns_per_neuron: 9,
            neurons_per_map,
            maps,
            states: StateMode::PerMac,
            weights: WeightMode::Local {
                weights_per_neuron: 9,
                rows: maps,
            },
        }
    }

    #[test]
    fn group_math_exact_multiple() {
        let c = cfg(32, 2);
        assert_eq!(c.total_neurons(), 64);
        assert_eq!(c.groups_per_map(), 2);
        assert_eq!(c.total_groups(), 4);
        for g in 0..4 {
            assert_eq!(c.active_macs(g), 16);
        }
        assert_eq!(c.total_macs(), 64 * 9);
    }

    #[test]
    fn partial_last_group_per_map() {
        let c = cfg(20, 2);
        assert_eq!(c.groups_per_map(), 2);
        assert_eq!(c.active_macs(0), 16);
        assert_eq!(c.active_macs(1), 4); // last group of map 0
        assert_eq!(c.active_macs(2), 16);
        assert_eq!(c.active_macs(3), 4); // last group of map 1
    }

    #[test]
    fn weight_rows_advance_per_map() {
        let c = cfg(20, 3);
        assert_eq!(c.weight_row(0), 0);
        assert_eq!(c.weight_row(1), 0);
        assert_eq!(c.weight_row(2), 1);
        assert_eq!(c.weight_row(5), 2);
    }

    #[test]
    fn single_row_weight_memory_clamps() {
        let mut c = cfg(16, 4);
        c.weights = WeightMode::Local {
            weights_per_neuron: 4,
            rows: 1,
        };
        assert_eq!(c.weight_row(3), 0);
    }

    #[test]
    #[should_panic(expected = "neurons")]
    fn zero_neurons_rejected() {
        cfg(0, 1).validate();
    }
}
