//! HMC die power from the published pJ/bit figures (§VII, "Power
//! estimation of HMC").
//!
//! The paper computes the non-Neurocube logic-die power (16 vault
//! controllers, 4 SERDES links, the VC–link interface) as
//! `6.78 pJ/bit × 32 bit × 16 vaults × 5 GHz = 17.3 W`, and DRAM power
//! analogously at `3.7 pJ/bit`, then scales both by the activity factor of
//! the design node (0.06 at 28 nm, where the PE clock limits the vault
//! stream to 300 MHz) and by the 15 nm energy-scaling factor from the ITRS
//! roadmap.

use crate::table2::{compute_power_w, ProcessNode};

/// Energy per bit through the HMC logic die (vault controllers + links +
/// interface), from \[20\].
pub const LOGIC_PJ_PER_BIT: f64 = 6.78;

/// Energy per bit through the DRAM dies, from \[20\].
pub const DRAM_PJ_PER_BIT: f64 = 3.7;

/// Vault word width in bits.
const WORD_BITS: f64 = 32.0;

/// Vault count.
const VAULTS: f64 = 16.0;

/// Vault I/O clock in Hz.
const IO_CLOCK_HZ: f64 = 5.0e9;

/// ITRS energy scaling of the (50 nm-class DRAM-process) logic die power
/// when the compute node moves to 15 nm — the paper's "scaled based on the
/// energy scaling factors from \[33\]" step, which its Table II realizes as a
/// 0.5× factor (17.3 W → 8.67 W).
pub const ITRS_15NM_LOGIC_SCALE: f64 = 0.5;

/// Logic-die power (without the Neurocube compute layer) at full stream
/// rate, before activity scaling: the paper's 17.3 W.
pub fn logic_die_peak_w() -> f64 {
    LOGIC_PJ_PER_BIT * 1e-12 * WORD_BITS * VAULTS * IO_CLOCK_HZ
}

/// Logic-die power (without Neurocube) at a design node — Table II's "HMC
/// Logic Die Without Neurocube" row (1.04 W at 28 nm, 8.67 W at 15 nm).
pub fn logic_die_power_w(node: ProcessNode) -> f64 {
    let scale = match node {
        ProcessNode::Cmos28 => 1.0,
        ProcessNode::FinFet15 => ITRS_15NM_LOGIC_SCALE,
    };
    logic_die_peak_w() * node.activity() * scale
}

/// All-DRAM-dies power at a design node — Table II's "All DRAM Dies" row
/// (0.568 W at 28 nm, 9.47 W at 15 nm).
pub fn dram_dies_power_w(node: ProcessNode) -> f64 {
    DRAM_PJ_PER_BIT * 1e-12 * WORD_BITS * VAULTS * IO_CLOCK_HZ * node.activity()
}

/// Total system power: compute layer + logic die + DRAM — the
/// parenthesized totals of Table III (1.86 W at 28 nm, 21.5 W at 15 nm).
pub fn system_power_w(node: ProcessNode) -> f64 {
    compute_power_w(node) + logic_die_power_w(node) + dram_dies_power_w(node)
}

/// SECDED(39,32) check bits stored and moved per protected 32-bit word.
pub const SECDED_CHECK_BITS: f64 = 7.0;

/// Decode-logic energy per SECDED-protected word (syndrome generation +
/// correction mux), on top of moving the check bits themselves. XOR-tree
/// syndrome logic over 39 bits is a few hundred gates — small next to the
/// 3.7 pJ/bit DRAM access, but not free.
pub const SECDED_DECODE_PJ_PER_WORD: f64 = 0.8;

/// ECC energy overhead of a run, in joules: `ecc_words` words decoded with
/// their check bits moved at `dram_pj_per_bit` (the channel's access cost)
/// plus the decode logic. The simulator's channel model already folds the
/// check-bit *transfer* into its measured energy; use
/// [`secded_decode_j`] when combining with that measurement to avoid
/// double-charging the transfer.
pub fn secded_overhead_j(ecc_words: u64, dram_pj_per_bit: f64) -> f64 {
    ecc_words as f64 * (SECDED_CHECK_BITS * dram_pj_per_bit + SECDED_DECODE_PJ_PER_WORD) * 1e-12
}

/// Decode-logic-only ECC energy, in joules (check-bit transfer excluded).
pub fn secded_decode_j(ecc_words: u64) -> f64 {
    ecc_words as f64 * SECDED_DECODE_PJ_PER_WORD * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_logic_power_is_17_3w() {
        assert!((logic_die_peak_w() - 17.3).abs() < 0.1);
    }

    #[test]
    fn logic_die_rows_match_table2() {
        assert!((logic_die_power_w(ProcessNode::Cmos28) - 1.04).abs() < 0.01);
        assert!((logic_die_power_w(ProcessNode::FinFet15) - 8.67).abs() < 0.01);
    }

    #[test]
    fn dram_rows_match_table2() {
        assert!((dram_dies_power_w(ProcessNode::Cmos28) - 0.568).abs() < 0.005);
        assert!((dram_dies_power_w(ProcessNode::FinFet15) - 9.47).abs() < 0.01);
    }

    #[test]
    fn secded_overhead_scales_linearly_and_decomposes() {
        assert_eq!(secded_overhead_j(0, DRAM_PJ_PER_BIT), 0.0);
        let one = secded_overhead_j(1, DRAM_PJ_PER_BIT);
        let million = secded_overhead_j(1_000_000, DRAM_PJ_PER_BIT);
        assert!((million - one * 1e6).abs() < 1e-18);
        // transfer + decode parts add up
        let transfer = SECDED_CHECK_BITS * DRAM_PJ_PER_BIT * 1e-12;
        assert!((one - transfer - secded_decode_j(1)).abs() < 1e-24);
        // Overhead per word stays well under the 32 data bits' cost.
        assert!(one < 32.0 * DRAM_PJ_PER_BIT * 1e-12);
    }

    #[test]
    fn system_totals_match_table3_parentheses() {
        // Table III lists compute power 0.25 W (1.86 W with memory) at
        // 28 nm and 3.41 W (21.50 W) at 15 nm.
        assert!((system_power_w(ProcessNode::Cmos28) - 1.86).abs() < 0.02);
        assert!((system_power_w(ProcessNode::FinFet15) - 21.5).abs() < 0.1);
    }
}
