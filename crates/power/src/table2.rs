//! Table II: synthesized per-component frequency, power and area.

use std::fmt;

/// The two synthesis nodes of §VII.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcessNode {
    /// Synopsys 28 nm CMOS generic library; SRAM limits the clock to
    /// 300 MHz, MACs run at 18.75 MHz.
    Cmos28,
    /// Nangate FreePDK15 FinFET at the 5 GHz (5,120 MHz synthesized) design
    /// point.
    FinFet15,
}

impl ProcessNode {
    /// Logic clock frequency in Hz (the PE/NoC/vault-I/O clock).
    pub fn clock_hz(self) -> f64 {
        match self {
            ProcessNode::Cmos28 => 300.0e6,
            ProcessNode::FinFet15 => 5.12e9,
        }
    }

    /// Activity factor relative to the 5 GHz vault stream — the paper
    /// scales the vault-controller and DRAM power by `300 MHz / 5 GHz`
    /// at 28 nm.
    pub fn activity(self) -> f64 {
        match self {
            ProcessNode::Cmos28 => 0.06,
            ProcessNode::FinFet15 => 1.0,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProcessNode::Cmos28 => "28nm",
            ProcessNode::FinFet15 => "15nm",
        }
    }
}

/// One synthesized module row of Table II.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComponentPower {
    /// Module name as printed in the paper.
    pub name: &'static str,
    /// Storage size in bits where the paper lists one.
    pub size_bits: Option<u32>,
    /// Instances of this module per PE (16 MACs, 1 of everything else).
    pub per_pe: u32,
    /// Operating frequency in MHz at (28 nm, 15 nm).
    pub freq_mhz: (f64, f64),
    /// Dynamic power in watts at (28 nm, 15 nm).
    pub dynamic_w: (f64, f64),
    /// Area in mm² at (28 nm, 15 nm).
    pub area_mm2: (f64, f64),
}

impl ComponentPower {
    /// Dynamic power at a node.
    pub fn power_w(&self, node: ProcessNode) -> f64 {
        match node {
            ProcessNode::Cmos28 => self.dynamic_w.0,
            ProcessNode::FinFet15 => self.dynamic_w.1,
        }
    }

    /// Area at a node.
    pub fn area(&self, node: ProcessNode) -> f64 {
        match node {
            ProcessNode::Cmos28 => self.area_mm2.0,
            ProcessNode::FinFet15 => self.area_mm2.1,
        }
    }

    /// Power density in W/mm² at a node (a Table II column).
    pub fn power_density(&self, node: ProcessNode) -> f64 {
        self.power_w(node) / self.area(node)
    }

    /// Total power of all instances in one PE.
    pub fn pe_power_w(&self, node: ProcessNode) -> f64 {
        self.power_w(node) * f64::from(self.per_pe)
    }

    /// Total area of all instances in one PE.
    pub fn pe_area_mm2(&self, node: ProcessNode) -> f64 {
        self.area(node) * f64::from(self.per_pe)
    }
}

impl fmt::Display for ComponentPower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:>8} {:>8.2} {:>8} {:>10.2e} {:>10.2e} {:>8.4} {:>8.4}",
            self.name,
            self.size_bits.map_or("N/A".into(), |b| b.to_string()),
            self.freq_mhz.0,
            self.freq_mhz.1,
            self.dynamic_w.0,
            self.dynamic_w.1,
            self.area_mm2.0,
            self.area_mm2.1,
        )
    }
}

/// The synthesized module rows of Table II, in the paper's order.
pub const TABLE2_COMPONENTS: [ComponentPower; 6] = [
    ComponentPower {
        name: "MAC",
        size_bits: Some(16),
        per_pe: 16,
        freq_mhz: (18.75, 320.0),
        dynamic_w: (3.02e-4, 9.17e-3),
        area_mm2: (0.0011, 0.0002),
    },
    ComponentPower {
        name: "SRAM Cache",
        size_bits: Some(20_480),
        per_pe: 1,
        freq_mhz: (300.0, 5120.0),
        dynamic_w: (2.93e-3, 2.90e-2),
        area_mm2: (0.0873, 0.0448),
    },
    ComponentPower {
        name: "Temporal Buffer",
        size_bits: Some(512),
        per_pe: 1,
        freq_mhz: (300.0, 5120.0),
        dynamic_w: (2.70e-5, 2.05e-5),
        area_mm2: (0.0025, 0.0003),
    },
    ComponentPower {
        name: "PMC",
        size_bits: None,
        per_pe: 1,
        freq_mhz: (300.0, 5120.0),
        dynamic_w: (4.17e-4, 1.39e-3),
        area_mm2: (0.0081, 0.0013),
    },
    ComponentPower {
        name: "Weight Reg",
        size_bits: Some(3_600),
        per_pe: 1,
        freq_mhz: (300.0, 5120.0),
        dynamic_w: (1.84e-4, 1.44e-4),
        area_mm2: (0.0173, 0.0020),
    },
    ComponentPower {
        name: "Router",
        size_bits: Some(36),
        per_pe: 1,
        freq_mhz: (300.0, 5120.0),
        dynamic_w: (7.17e-3, 3.59e-2),
        area_mm2: (0.0609, 0.0085),
    },
];

/// One PE + router power (the paper's "PE Sum" row), rebuilt from the
/// component rows.
pub fn pe_sum_power_w(node: ProcessNode) -> f64 {
    TABLE2_COMPONENTS.iter().map(|c| c.pe_power_w(node)).sum()
}

/// One PE + router area (the paper's "PE Sum" row).
pub fn pe_sum_area_mm2(node: ProcessNode) -> f64 {
    TABLE2_COMPONENTS.iter().map(|c| c.pe_area_mm2(node)).sum()
}

/// Compute-layer power: 16 PEs + 16 routers (the paper's "Compute in
/// Neurocube" row: 249 mW at 28 nm, 3.41 W at 15 nm).
pub fn compute_power_w(node: ProcessNode) -> f64 {
    16.0 * pe_sum_power_w(node)
}

/// Compute-layer area: the paper's 3.0983 mm² (28 nm) / 0.9601 mm² (15 nm).
pub fn compute_area_mm2(node: ProcessNode) -> f64 {
    16.0 * pe_sum_area_mm2(node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_sum_matches_paper_row() {
        // Paper: 1.56e-2 W / 0.1936 mm² at 28 nm; 2.13e-1 W / 0.0600 mm² at
        // 15 nm (within rounding of the published component rows).
        assert!((pe_sum_power_w(ProcessNode::Cmos28) - 1.56e-2).abs() < 2e-4);
        assert!((pe_sum_area_mm2(ProcessNode::Cmos28) - 0.1936).abs() < 2e-3);
        assert!((pe_sum_power_w(ProcessNode::FinFet15) - 2.13e-1).abs() < 2e-3);
        assert!((pe_sum_area_mm2(ProcessNode::FinFet15) - 0.0600).abs() < 1e-3);
    }

    #[test]
    fn compute_totals_match_paper() {
        // 249 mW / 3.0983 mm² at 28 nm; 3.41 W / 0.9601 mm² at 15 nm.
        assert!((compute_power_w(ProcessNode::Cmos28) - 0.249).abs() < 5e-3);
        assert!((compute_area_mm2(ProcessNode::Cmos28) - 3.0983).abs() < 5e-2);
        assert!((compute_power_w(ProcessNode::FinFet15) - 3.41).abs() < 5e-2);
        assert!((compute_area_mm2(ProcessNode::FinFet15) - 0.9601).abs() < 2e-2);
    }

    #[test]
    fn mac_frequency_is_pe_over_16() {
        let mac = &TABLE2_COMPONENTS[0];
        assert!((mac.freq_mhz.0 - 300.0 / 16.0).abs() < 1e-9);
        assert!((mac.freq_mhz.1 - 5120.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn power_density_orders_of_magnitude() {
        // The paper's headline density contrast: 15 nm MAC ~ 4.9e1 W/mm².
        let mac = &TABLE2_COMPONENTS[0];
        assert!((mac.power_density(ProcessNode::FinFet15) - 45.85).abs() < 5.0);
        assert!(mac.power_density(ProcessNode::Cmos28) < 1.0);
    }

    #[test]
    fn activity_factors() {
        assert!((ProcessNode::Cmos28.activity() - 0.06).abs() < 1e-9);
        assert_eq!(ProcessNode::FinFet15.activity(), 1.0);
        assert_eq!(ProcessNode::Cmos28.name(), "28nm");
    }

    #[test]
    fn display_has_all_columns() {
        let s = TABLE2_COMPONENTS[1].to_string();
        assert!(s.contains("SRAM Cache"));
        assert!(s.contains("20480"));
    }
}
