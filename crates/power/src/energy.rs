//! End-to-end energy accounting: Table II's power model applied to a
//! *measured* simulator run.
//!
//! The paper reports power (watts) and throughput (GOPs/s) separately;
//! combining them with a run's cycle count gives energy per inference and
//! efficiency in GOPs/J — the quantities a system designer actually
//! compares. DRAM energy comes in two flavours: the *measured* value from
//! the simulator's per-bit accounting (3.7 pJ/bit × actual bits moved) and
//! the Table II activity model (9.47 W × time at 15 nm); both are exposed
//! because their gap quantifies how far the workload sits from the
//! all-vaults-streaming assumption behind Table II.

use crate::hmc::{dram_dies_power_w, logic_die_power_w};
use crate::table2::{compute_power_w, ProcessNode};
use neurocube::RunReport;

/// Energy breakdown of one simulated run at a design node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyReport {
    /// The design node evaluated.
    pub node: ProcessNode,
    /// Wall-clock seconds of the run at the node's clock.
    pub seconds: f64,
    /// Compute-layer (16 PEs + routers) energy, joules.
    pub compute_j: f64,
    /// Non-Neurocube logic-die (vault controllers, links) energy, joules.
    pub logic_die_j: f64,
    /// DRAM energy from the simulator's per-bit accounting, joules.
    pub dram_measured_j: f64,
    /// DRAM energy from the Table II activity model, joules.
    pub dram_model_j: f64,
    /// Arithmetic operations performed.
    pub ops: u64,
}

impl EnergyReport {
    /// Evaluates a run's energy at `node`.
    pub fn from_run(report: &RunReport, node: ProcessNode) -> EnergyReport {
        let seconds = report.seconds_at(node.clock_hz());
        EnergyReport {
            node,
            seconds,
            compute_j: compute_power_w(node) * seconds,
            logic_die_j: logic_die_power_w(node) * seconds,
            dram_measured_j: report.dram_energy_j(),
            dram_model_j: dram_dies_power_w(node) * seconds,
            ops: report.total_ops(),
        }
    }

    /// Total system energy (compute + logic die + measured DRAM), joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.logic_die_j + self.dram_measured_j
    }

    /// System efficiency in GOPs/J (= GOPs/s per watt of the whole
    /// system over this run).
    pub fn gops_per_joule(&self) -> f64 {
        self.ops as f64 / self.total_j() / 1e9
    }

    /// Picojoules per arithmetic operation, system-wide.
    pub fn pj_per_op(&self) -> f64 {
        self.total_j() * 1e12 / self.ops as f64
    }

    /// How far the workload's DRAM activity sits below the Table II
    /// all-vaults-streaming assumption (measured / model).
    pub fn dram_activity(&self) -> f64 {
        if self.dram_model_j == 0.0 {
            return 0.0;
        }
        self.dram_measured_j / self.dram_model_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube::{Neurocube, SystemConfig};
    use neurocube_nn::{workloads, Tensor};

    fn run() -> RunReport {
        let spec = workloads::tiny_convnet();
        let params = spec.init_params(3, 0.25);
        let mut cube = Neurocube::new(SystemConfig::paper(true));
        let loaded = cube.load(spec, params);
        let (_, report) = cube.run_inference(&loaded, &Tensor::zeros(1, 12, 12));
        report
    }

    #[test]
    fn energy_scales_with_node() {
        let report = run();
        let e28 = EnergyReport::from_run(&report, ProcessNode::Cmos28);
        let e15 = EnergyReport::from_run(&report, ProcessNode::FinFet15);
        // Same cycles: the 28 nm run takes ~17x longer in wall clock.
        assert!(e28.seconds > 16.0 * e15.seconds);
        // Measured DRAM energy is node-independent (same bits moved).
        assert!((e28.dram_measured_j - e15.dram_measured_j).abs() < 1e-15);
        assert_eq!(e28.ops, e15.ops);
        // Totals are positive and self-consistent.
        assert!(e15.total_j() > 0.0);
        assert!((e15.gops_per_joule() - e15.ops as f64 / e15.total_j() / 1e9).abs() < 1e-9);
    }

    #[test]
    fn dram_activity_is_a_fraction_for_light_workloads() {
        let report = run();
        let e = EnergyReport::from_run(&report, ProcessNode::FinFet15);
        // A tiny network never saturates all 16 vaults continuously.
        let a = e.dram_activity();
        assert!(a > 0.0 && a < 1.0, "activity {a}");
    }

    #[test]
    fn pj_per_op_is_reasonable() {
        // At the 15 nm node with ~21 W system power and O(100) GOPs/s, the
        // system-level cost is on the order of 100 pJ/op.
        let report = run();
        let e = EnergyReport::from_run(&report, ProcessNode::FinFet15);
        let pj = e.pj_per_op();
        assert!(pj > 10.0 && pj < 10_000.0, "{pj} pJ/op");
    }
}
