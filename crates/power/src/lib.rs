//! Power, area, efficiency and thermal models for the Neurocube.
//!
//! The paper evaluates hardware cost three ways (§VII):
//!
//! 1. **RTL synthesis** of one PE + router in 28 nm CMOS and 15 nm FinFET —
//!    Table II's per-component frequency/power/area numbers. We embed those
//!    published constants ([`table2`]) and rebuild every derived quantity
//!    (PE sums, compute totals, power density) from them.
//! 2. **HMC die power** from the pJ/bit figures of the HMC ISSCC paper
//!    \[20\]: logic die = 6.78 pJ/bit, DRAM = 3.7 pJ/bit at the full
//!    16-vault × 32-bit × 5 GHz stream rate, activity-scaled for the
//!    300 MHz 28 nm design point ([`hmc`]).
//! 3. **Thermal feasibility** (Fig. 17): a steady-state 3D resistive-grid
//!    solver over the 5-die stack ([`thermal`]), checked against the HMC
//!    2.0 operating limits (383 K logic, 378 K DRAM).
//!
//! [`efficiency`] assembles Table III (GOPs/s, compute power, GOPs/s/W
//! across published platforms plus this reproduction's measured numbers),
//! [`energy`] turns a measured simulator run into joules per inference and
//! GOPs/J, [`area`] reproduces the Fig. 16 logic-die floorplan accounting,
//! and [`gating`] prices what operand-gated MACs and zero-eliding vault
//! controllers would save given the sparsity classification counters
//! (DESIGN.md §13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod efficiency;
pub mod energy;
pub mod gating;
pub mod hmc;
pub mod table2;
pub mod thermal;

pub use table2::{ComponentPower, ProcessNode, TABLE2_COMPONENTS};
