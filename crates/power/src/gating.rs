//! Gated-update energy attribution for the sparsity counters.
//!
//! The simulator never changes its timing or energy totals when an operand
//! is zero — a zero-product MAC issues and a zero word crosses the channel
//! like any other (DESIGN.md §13). What sparsity-aware hardware *would*
//! save is computed here, after the fact, from the classification counters
//! the datapath maintains (`sparsity.pe.lanes_gated`,
//! `sparsity.dram.*` in the stats registry):
//!
//! * a clock/operand-gated MAC skips the multiply-accumulate when either
//!   operand is zero — each gated lane-cycle saves one MAC-op of dynamic
//!   energy, derived from the Table II MAC row,
//! * a zero-run-aware vault controller elides zero words from the channel
//!   — each elided bit saves the interface's pJ/bit (Table I).
//!
//! Both attributions are *upper bounds of the dynamic component*: gating
//! logic overhead and leakage are not modeled, which is the same
//! convention the paper's Table II dynamic-power column uses.

use crate::table2::{ProcessNode, TABLE2_COMPONENTS};

/// Dynamic energy of one MAC operation (one lane-cycle) in joules at a
/// node: the Table II per-instance MAC dynamic power divided by the MAC's
/// own clock (each MAC retires one op per MAC-clock cycle).
///
/// ```
/// use neurocube_power::gating::mac_op_energy_j;
/// use neurocube_power::ProcessNode;
/// // 15 nm: 9.17 mW per MAC instance at 320 MHz -> ~28.7 pJ per op.
/// let pj = mac_op_energy_j(ProcessNode::FinFet15) * 1e12;
/// assert!((25.0..32.0).contains(&pj));
/// ```
pub fn mac_op_energy_j(node: ProcessNode) -> f64 {
    // Table II lists per-instance dynamic power (`per_pe = 16` scales it
    // to the PE level elsewhere), so power over the MAC clock is energy
    // per retired op.
    let mac = &TABLE2_COMPONENTS[0];
    let (freq_mhz, dynamic_w) = match node {
        ProcessNode::Cmos28 => (mac.freq_mhz.0, mac.dynamic_w.0),
        ProcessNode::FinFet15 => (mac.freq_mhz.1, mac.dynamic_w.1),
    };
    dynamic_w / (freq_mhz * 1e6)
}

/// Dynamic MAC energy a gated datapath would have saved, in joules:
/// `lanes_gated` lane-cycles (the `sparsity.pe.lanes_gated` counter) at
/// one MAC-op each.
pub fn gated_mac_energy_j(node: ProcessNode, lanes_gated: u64) -> f64 {
    mac_op_energy_j(node) * lanes_gated as f64
}

/// DRAM transfer energy a zero-eliding controller would have saved, in
/// joules: `elidable_bits` (from `neurocube_dram::zerorun::elidable_bits`
/// or `zero_words × word_bits`) at the interface's access energy.
pub fn elided_transfer_energy_j(elidable_bits: u64, energy_pj_per_bit: f64) -> f64 {
    elidable_bits as f64 * energy_pj_per_bit * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_op_energy_is_power_over_frequency() {
        // 28 nm: 3.02e-4 W at 18.75 MHz per instance -> ~16.1 pJ/op.
        let e28 = mac_op_energy_j(ProcessNode::Cmos28);
        assert!((e28 - 3.02e-4 / 18.75e6).abs() < 1e-18);
        // 15 nm: 9.17e-3 W at 320 MHz -> ~28.7 pJ/op (the aggressive
        // 5 GHz design point spends more energy per op than the slow
        // 28 nm one — frequency outruns the node shrink).
        let e15 = mac_op_energy_j(ProcessNode::FinFet15);
        assert!((e15 - 9.17e-3 / 320.0e6).abs() < 1e-18);
    }

    #[test]
    fn gated_energy_scales_linearly_with_gated_lanes() {
        let one = gated_mac_energy_j(ProcessNode::FinFet15, 1);
        let many = gated_mac_energy_j(ProcessNode::FinFet15, 1000);
        assert!((many / one - 1000.0).abs() < 1e-6);
        assert_eq!(gated_mac_energy_j(ProcessNode::FinFet15, 0), 0.0);
    }

    #[test]
    fn elided_transfer_matches_channel_energy_model() {
        // 32 bits at HMC-internal 3.7 pJ/bit — the same constant the
        // channel charges per transferred word.
        let e = elided_transfer_energy_j(32, 3.7);
        assert!((e - 32.0 * 3.7e-12).abs() < 1e-24);
    }
}
