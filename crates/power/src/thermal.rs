//! Steady-state 3D thermal model of the Neurocube stack (Fig. 17).
//!
//! The paper runs 3D-ICE / Energy Introspector over the Fig. 16 floorplan
//! with a passive heat sink and reports maximum temperatures of 349 K on
//! the logic die and 344 K across the four DRAM dies at the 15 nm / 5 GHz
//! design point, against HMC 2.0 limits of 383 K (logic) and 378 K (DRAM).
//!
//! We reproduce that analysis with a steady-state finite-difference
//! resistive grid: five dies (logic at the bottom, four DRAM above), each
//! split into the 4×4 vault tiles, with vertical conduction between dies,
//! lateral conduction between neighbouring tiles, and a heat-sink path from
//! the top die to ambient. The three conductances are calibrated once so
//! the 15 nm power numbers of Table II land on the paper's reported maxima
//! (they do, within ~1 K), and the 28 nm point then follows from the model
//! — as in the paper, its temperature rise is negligible.

use crate::hmc::{dram_dies_power_w, logic_die_power_w};
use crate::table2::{compute_power_w, ProcessNode};

/// Grid width/height (vault tiles per die edge).
pub const GRID: usize = 4;

/// DRAM dies in the stack.
pub const DRAM_DIES: usize = 4;

/// Ambient / coolant temperature in kelvin.
pub const AMBIENT_K: f64 = 300.0;

/// HMC 2.0 maximum logic-die operating temperature \[36\].
pub const LOGIC_LIMIT_K: f64 = 383.0;

/// HMC 2.0 maximum DRAM-die operating temperature \[36\].
pub const DRAM_LIMIT_K: f64 = 378.0;

/// Per-tile vertical conductance between adjacent dies, W/K (TSV field +
/// bonding layers; calibrated, see module docs).
pub const G_VERTICAL: f64 = 0.22;

/// Per-tile conductance from the top DRAM die to ambient through the
/// passive heat sink, W/K (calibrated).
pub const G_SINK: f64 = 0.044;

/// Per-tile lateral conductance between neighbouring tiles of one die,
/// W/K (silicon spreading; calibrated).
pub const G_LATERAL: f64 = 0.02;

/// Result of a thermal solve.
#[derive(Clone, Debug, PartialEq)]
pub struct ThermalReport {
    /// Temperature of every tile, `[die][tile]`, die 0 = logic.
    pub temps_k: Vec<Vec<f64>>,
    /// Gauss–Seidel sweeps used.
    pub iterations: u32,
}

impl ThermalReport {
    /// Hottest logic-die tile.
    pub fn max_logic_k(&self) -> f64 {
        self.temps_k[0].iter().copied().fold(f64::MIN, f64::max)
    }

    /// Hottest DRAM tile across all four DRAM dies.
    pub fn max_dram_k(&self) -> f64 {
        self.temps_k[1..]
            .iter()
            .flatten()
            .copied()
            .fold(f64::MIN, f64::max)
    }

    /// Whether both HMC 2.0 temperature limits are met — the paper's
    /// conclusion that the 15 nm / 5 GHz Neurocube "fits within thermal
    /// conditions".
    pub fn within_hmc_limits(&self) -> bool {
        self.max_logic_k() <= LOGIC_LIMIT_K && self.max_dram_k() <= DRAM_LIMIT_K
    }
}

/// Solves the steady-state temperature field for arbitrary per-tile power
/// maps (`logic_tile_w\[16\]`, `dram_tile_w\[16\]` applied to each DRAM die).
///
/// # Panics
///
/// Panics if the power maps are not 16 entries each.
pub fn solve(logic_tile_w: &[f64], dram_tile_w: &[f64]) -> ThermalReport {
    assert_eq!(logic_tile_w.len(), GRID * GRID, "16 logic tiles");
    assert_eq!(dram_tile_w.len(), GRID * GRID, "16 DRAM tiles");
    let dies = 1 + DRAM_DIES;
    let mut t = vec![vec![AMBIENT_K; GRID * GRID]; dies];
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut delta: f64 = 0.0;
        for d in 0..dies {
            for i in 0..GRID * GRID {
                let (x, y) = (i % GRID, i / GRID);
                let p = if d == 0 {
                    logic_tile_w[i]
                } else {
                    dram_tile_w[i]
                };
                let mut num = p;
                let mut den = 0.0;
                if d > 0 {
                    num += G_VERTICAL * t[d - 1][i];
                    den += G_VERTICAL;
                }
                if d + 1 < dies {
                    num += G_VERTICAL * t[d + 1][i];
                    den += G_VERTICAL;
                }
                if d + 1 == dies {
                    num += G_SINK * AMBIENT_K;
                    den += G_SINK;
                }
                for (nx, ny) in [
                    (x.wrapping_sub(1), y),
                    (x + 1, y),
                    (x, y.wrapping_sub(1)),
                    (x, y + 1),
                ] {
                    if nx < GRID && ny < GRID {
                        num += G_LATERAL * t[d][ny * GRID + nx];
                        den += G_LATERAL;
                    }
                }
                let new = num / den;
                delta = delta.max((new - t[d][i]).abs());
                t[d][i] = new;
            }
        }
        if delta < 1e-9 || iterations >= 200_000 {
            break;
        }
    }
    ThermalReport {
        temps_k: t,
        iterations,
    }
}

/// Solves the Fig. 17 scenario for a design node: uniform tile powers
/// derived from Table II (PE + router per logic tile plus the shared
/// logic-die baseline) and the DRAM power split over the four dies.
pub fn solve_node(node: ProcessNode) -> ThermalReport {
    let logic_tile = (compute_power_w(node) + logic_die_power_w(node)) / 16.0;
    let dram_tile = dram_dies_power_w(node) / (DRAM_DIES as f64 * 16.0);
    solve(&[logic_tile; 16], &[dram_tile; 16])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig17_15nm_maxima() {
        let r = solve_node(ProcessNode::FinFet15);
        // Paper: 349 K logic, 344 K DRAM. Calibration lands within ~1.5 K.
        assert!(
            (r.max_logic_k() - 349.0).abs() < 3.0,
            "logic {}",
            r.max_logic_k()
        );
        assert!(
            (r.max_dram_k() - 344.0).abs() < 3.0,
            "dram {}",
            r.max_dram_k()
        );
        assert!(r.within_hmc_limits());
        // Logic (farthest from the sink, most power) is the hottest layer.
        assert!(r.max_logic_k() > r.max_dram_k());
    }

    #[test]
    fn cmos28_rise_is_negligible() {
        // Paper: "For the 28 nm node, the thermal effect was negligible as
        // Neurocube consumes relatively small power at 300 MHz".
        let r = solve_node(ProcessNode::Cmos28);
        assert!(r.max_logic_k() - AMBIENT_K < 10.0, "{}", r.max_logic_k());
        assert!(r.within_hmc_limits());
    }

    #[test]
    fn hotspot_follows_power() {
        // Put all power in one corner tile; that tile must be the hottest.
        let mut logic = [0.0; 16];
        logic[0] = 10.0;
        let r = solve(&logic, &[0.0; 16]);
        let corner = r.temps_k[0][0];
        for (i, &t) in r.temps_k[0].iter().enumerate() {
            if i != 0 {
                assert!(t < corner, "tile {i}");
            }
        }
    }

    #[test]
    fn zero_power_is_ambient() {
        let r = solve(&[0.0; 16], &[0.0; 16]);
        for t in r.temps_k.iter().flatten() {
            assert!((t - AMBIENT_K).abs() < 1e-6);
        }
    }

    #[test]
    fn energy_conservation_through_sink() {
        // Total heat must exit through the sink: sum over top-die tiles of
        // G_SINK * (T - ambient) == injected power.
        let logic = [0.5; 16];
        let dram = [0.1; 16];
        let r = solve(&logic, &dram);
        let injected: f64 = 16.0 * 0.5 + 4.0 * 16.0 * 0.1;
        let out: f64 = r.temps_k[DRAM_DIES]
            .iter()
            .map(|&t| G_SINK * (t - AMBIENT_K))
            .sum();
        assert!(
            (injected - out).abs() < 0.01 * injected,
            "in {injected} out {out}"
        );
    }
}
