//! Logic-die floorplan accounting — Fig. 16 and the §VII "Area analysis".
//!
//! The paper demonstrates feasibility by placing one Neurocube core (a PE,
//! a router and a vault controller with its TSV field) in each of the 16
//! vault footprints of the HMC logic die: a PE + router fit in
//! 513 µm × 513 µm at 70 % placement utilization, the vault controller area
//! comes from the synthesized AXI interconnect of \[24\], the TSV field is
//! 116 TSVs at a 4 µm pitch, and the whole assembly must fit the published
//! 68 mm² logic die \[20\].

use crate::table2::{pe_sum_area_mm2, ProcessNode};

/// HMC logic-die area in mm² \[20\].
pub const LOGIC_DIE_MM2: f64 = 68.0;

/// Neurocube cores (one per vault).
pub const CORES: u32 = 16;

/// Placement utilization assumed for the PE + router macro (§VII).
pub const PLACEMENT_UTILIZATION: f64 = 0.70;

/// Synthesized vault-controller area in 28 nm, from the AXI-4.0 smart
/// memory cube interconnect of \[24\] (mm²).
pub const VAULT_CONTROLLER_MM2: f64 = 0.08;

/// TSVs per vault (1,866 TSVs in one HMC, 116 placed within each VC).
pub const TSVS_PER_VAULT: u32 = 116;

/// TSV pitch in µm \[33\].
pub const TSV_PITCH_UM: f64 = 4.0;

/// Area accounting for one design node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FloorplanReport {
    /// Synthesis node.
    pub node: ProcessNode,
    /// PE + router cell area per core (Table II "PE Sum"), mm².
    pub pe_router_mm2: f64,
    /// PE + router *placed* area at the assumed utilization, mm².
    pub pe_router_placed_mm2: f64,
    /// Vault controller area, mm².
    pub vault_controller_mm2: f64,
    /// TSV field area, mm².
    pub tsv_mm2: f64,
}

impl FloorplanReport {
    /// Builds the accounting for `node`.
    pub fn new(node: ProcessNode) -> FloorplanReport {
        let pe_router = pe_sum_area_mm2(node);
        FloorplanReport {
            node,
            pe_router_mm2: pe_router,
            pe_router_placed_mm2: pe_router / PLACEMENT_UTILIZATION,
            vault_controller_mm2: VAULT_CONTROLLER_MM2,
            tsv_mm2: f64::from(TSVS_PER_VAULT) * (TSV_PITCH_UM * TSV_PITCH_UM) * 1e-6,
        }
    }

    /// One core's total placed area, mm².
    pub fn core_mm2(&self) -> f64 {
        self.pe_router_placed_mm2 + self.vault_controller_mm2 + self.tsv_mm2
    }

    /// All 16 cores' area, mm².
    pub fn total_mm2(&self) -> f64 {
        self.core_mm2() * f64::from(CORES)
    }

    /// Fraction of the 68 mm² logic die the Neurocube occupies.
    pub fn die_fraction(&self) -> f64 {
        self.total_mm2() / LOGIC_DIE_MM2
    }

    /// The paper's feasibility claim: "Neurocube with 16 cores can be
    /// synthesized on the logic die (68 mm²) of HMC".
    pub fn fits_logic_die(&self) -> bool {
        self.total_mm2() <= LOGIC_DIE_MM2
    }

    /// Side length in µm of the square macro holding one placed PE+router
    /// (the paper quotes 513 µm × 513 µm at 28 nm).
    pub fn pe_router_side_um(&self) -> f64 {
        (self.pe_router_placed_mm2 * 1e6).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_router_macro_side_matches_513um_at_28nm() {
        let r = FloorplanReport::new(ProcessNode::Cmos28);
        // 0.1936 mm² / 0.7 => 0.2766 mm² => 526 µm; paper rounds to 513.
        assert!(
            (r.pe_router_side_um() - 513.0).abs() < 20.0,
            "side {}",
            r.pe_router_side_um()
        );
    }

    #[test]
    fn both_nodes_fit_the_logic_die() {
        for node in [ProcessNode::Cmos28, ProcessNode::FinFet15] {
            let r = FloorplanReport::new(node);
            assert!(r.fits_logic_die(), "{node:?}: {} mm²", r.total_mm2());
            assert!(r.die_fraction() < 0.15, "{node:?}");
        }
    }

    #[test]
    fn compute_area_matches_table2_totals() {
        // 16 x PE sum = 3.0983 mm² (28 nm) / 0.9601 mm² (15 nm), before
        // utilization/VC/TSV overheads.
        let r28 = FloorplanReport::new(ProcessNode::Cmos28);
        assert!((r28.pe_router_mm2 * 16.0 - 3.0983).abs() < 0.05);
        let r15 = FloorplanReport::new(ProcessNode::FinFet15);
        assert!((r15.pe_router_mm2 * 16.0 - 0.9601).abs() < 0.02);
    }

    #[test]
    fn tsv_field_is_small() {
        let r = FloorplanReport::new(ProcessNode::Cmos28);
        // 116 TSVs at 4 µm pitch ~ 0.0019 mm².
        assert!((r.tsv_mm2 - 116.0 * 16.0 * 1e-6).abs() < 1e-9);
        assert!(r.tsv_mm2 < 0.01 * r.core_mm2());
    }
}
