//! Table III: cross-platform throughput / power / efficiency comparison.
//!
//! The published rows are embedded as constants; the two "This work" rows
//! are *built from measured simulator throughput* so the benchmark harness
//! reports reproduction numbers next to the paper's.

use crate::hmc::system_power_w;
use crate::table2::{compute_power_w, ProcessNode};
use std::fmt;

/// Whether a platform's throughput figure includes DRAM access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DramAccounting {
    /// Throughput measured with main-memory traffic included.
    WithDram,
    /// On-chip-only figure (the paper notes these are optimistic).
    WithoutDram,
}

/// One row of Table III.
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformRow {
    /// Platform / paper label.
    pub name: &'static str,
    /// Publication year tag as in the table header.
    pub year: &'static str,
    /// On-line programmability for different networks.
    pub programmable: bool,
    /// Arithmetic precision in bits (0 = not published).
    pub bits: u32,
    /// Throughput in GOPs/s.
    pub throughput_gops: f64,
    /// How the throughput counts memory.
    pub dram: DramAccounting,
    /// Compute power in watts.
    pub compute_power_w: f64,
    /// Application / evaluation workload note.
    pub application: &'static str,
}

impl PlatformRow {
    /// Compute efficiency in GOPs/s/W — the table's bottom comparison row.
    pub fn efficiency(&self) -> f64 {
        self.throughput_gops / self.compute_power_w
    }
}

impl fmt::Display for PlatformRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:>4} {:>5} {:>6} {:>10.2} {:>9} {:>9.3} {:>10.2}",
            self.name,
            self.year,
            if self.programmable { "yes" } else { "no" },
            self.bits,
            self.throughput_gops,
            match self.dram {
                DramAccounting::WithDram => "w/ DRAM",
                DramAccounting::WithoutDram => "w/o DRAM",
            },
            self.compute_power_w,
            self.efficiency()
        )
    }
}

/// The published comparison platforms of Table III (everything except the
/// "This work" columns).
pub const PUBLISHED_PLATFORMS: [PlatformRow; 8] = [
    PlatformRow {
        name: "Tegra K1 [2]",
        year: "'15",
        programmable: true,
        bits: 0,
        throughput_gops: 76.0,
        dram: DramAccounting::WithDram,
        compute_power_w: 11.0,
        application: "scene labeling, inference",
    },
    PlatformRow {
        name: "GTX 780 [2]",
        year: "'15",
        programmable: true,
        bits: 0,
        throughput_gops: 1781.0,
        dram: DramAccounting::WithDram,
        compute_power_w: 206.8,
        application: "scene labeling, inference",
    },
    PlatformRow {
        name: "NeuFlow Virtex6 [4]",
        year: "'11",
        programmable: false,
        bits: 16,
        throughput_gops: 147.0,
        dram: DramAccounting::WithoutDram,
        compute_power_w: 10.0,
        application: "vision (conv only)",
    },
    PlatformRow {
        name: "NeuFlow 45nm [4]",
        year: "'11",
        programmable: false,
        bits: 16,
        throughput_gops: 1164.0,
        dram: DramAccounting::WithoutDram,
        compute_power_w: 5.0,
        application: "vision (conv only)",
    },
    PlatformRow {
        name: "nn-X ZC706 [5]",
        year: "'14",
        programmable: false,
        bits: 16,
        throughput_gops: 227.0,
        dram: DramAccounting::WithDram,
        compute_power_w: 8.0,
        application: "mobile conv nets",
    },
    PlatformRow {
        name: "DaDianNao [7]",
        year: "'14",
        programmable: false,
        bits: 16,
        throughput_gops: 5580.0,
        dram: DramAccounting::WithoutDram,
        compute_power_w: 15.97,
        application: "MNIST-class, both",
    },
    PlatformRow {
        name: "Origami [8]",
        year: "'15",
        programmable: false,
        bits: 12,
        throughput_gops: 203.0,
        dram: DramAccounting::WithoutDram,
        compute_power_w: 1.2,
        application: "scene labeling, inference",
    },
    PlatformRow {
        name: "Conti-Benini [6]",
        year: "'15",
        programmable: false,
        bits: 16,
        throughput_gops: 2.78,
        dram: DramAccounting::WithoutDram,
        compute_power_w: 0.001,
        application: "brain-inspired vision",
    },
];

/// Builds the two "This work" rows from a *measured* simulator throughput
/// at the 5 GHz reference clock (the 28 nm row scales by the 300 MHz /
/// 5 GHz frequency ratio, exactly as the paper's cycle counts do).
pub fn neurocube_rows(measured_gops_at_5ghz: f64) -> [PlatformRow; 2] {
    [
        PlatformRow {
            name: "This work 28nm",
            year: "",
            programmable: true,
            bits: 16,
            throughput_gops: measured_gops_at_5ghz * ProcessNode::Cmos28.activity(),
            dram: DramAccounting::WithDram,
            compute_power_w: compute_power_w(ProcessNode::Cmos28),
            application: "scene labeling, both",
        },
        PlatformRow {
            name: "This work 15nm",
            year: "",
            programmable: true,
            bits: 16,
            throughput_gops: measured_gops_at_5ghz,
            dram: DramAccounting::WithDram,
            compute_power_w: compute_power_w(ProcessNode::FinFet15),
            application: "scene labeling, both",
        },
    ]
}

/// The headline claim of the abstract: efficiency improvement over the
/// reported GPU implementation (GTX 780), computed from a measured
/// throughput. The paper projects "~4X".
pub fn gpu_efficiency_improvement(measured_gops_at_5ghz: f64) -> f64 {
    let ours = neurocube_rows(measured_gops_at_5ghz)[1].efficiency();
    let gpu = PUBLISHED_PLATFORMS[1].efficiency();
    ours / gpu
}

/// Total system power rows (with memory) for the Table III parentheses.
pub fn neurocube_system_power_w(node: ProcessNode) -> f64 {
    system_power_w(node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_efficiencies_match_paper() {
        // Spot-check the efficiency row of Table III.
        let eff: Vec<f64> = PUBLISHED_PLATFORMS
            .iter()
            .map(PlatformRow::efficiency)
            .collect();
        assert!((eff[0] - 6.91).abs() < 0.01); // Tegra K1
        assert!((eff[1] - 8.61).abs() < 0.01); // GTX 780
        assert!((eff[3] - 232.8).abs() < 0.1); // NeuFlow ASIC
        assert!((eff[5] - 349.4).abs() < 0.2); // DaDianNao
        assert!((eff[7] - 2780.0).abs() < 1.0); // [6]
    }

    #[test]
    fn this_work_rows_at_paper_throughput() {
        // With the paper's 132.4 GOPs/s, the rows reproduce Table III's
        // 8.0 / 132.4 GOPs/s and 31.92 / 38.82 GOPs/s/W.
        let rows = neurocube_rows(132.4);
        assert!((rows[0].throughput_gops - 7.94).abs() < 0.2);
        assert!((rows[1].throughput_gops - 132.4).abs() < 1e-9);
        assert!((rows[0].efficiency() - 31.92).abs() < 1.0);
        assert!((rows[1].efficiency() - 38.82).abs() < 1.0);
    }

    #[test]
    fn gpu_improvement_is_about_4x() {
        let x = gpu_efficiency_improvement(132.4);
        assert!((3.5..5.5).contains(&x), "improvement {x}");
    }

    #[test]
    fn display_row_is_complete() {
        let s = PUBLISHED_PLATFORMS[5].to_string();
        assert!(s.contains("DaDianNao"));
        assert!(s.contains("w/o DRAM"));
    }
}
