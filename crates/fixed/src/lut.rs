//! Look-up-table activation functions.
//!
//! The PNG evaluates the non-linear activation function `N.L(y)` through a
//! hardware look-up table (§IV-A: "The PNG also pushes states through the
//! non-linear activate function (implemented as the Look Up Table)"). We
//! model that LUT faithfully: the 16-bit input is quantized to an index, and
//! the table stores one precomputed `Q1.7.8` output per index. Both the
//! cycle-level simulator and the functional reference evaluate activations
//! through the same table, so results match bit-for-bit.

use crate::q88::Q88;
use std::fmt;
use std::sync::Arc;

/// Number of entries in the hardware LUT.
///
/// The paper does not publish the LUT depth; 1024 entries over the full
/// `Q1.7.8` input range gives a quantization step of `0.25` in input space,
/// refined around zero where sigmoidal activations actually vary (see
/// [`ActivationLut::new`] for the two-segment indexing scheme).
pub const LUT_ENTRIES: usize = 1024;

/// The activation functions the Neurocube host can program into a PNG's LUT.
///
/// LSTM-style networks reprogram the LUT per layer (§VI, "Extending
/// Neurocube"); the enum is the menu of tables the host compiler knows how to
/// generate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Pass-through (`x = y`); used for pooling and linear output layers.
    #[default]
    Identity,
    /// Rectified linear unit: `max(0, y)`.
    ReLU,
    /// Logistic sigmoid: `1 / (1 + e^-y)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Evaluates the mathematical function at `v` in double precision.
    ///
    /// This is the *ideal* curve; hardware evaluation goes through
    /// [`ActivationLut`] which quantizes it.
    pub fn ideal(self, v: f64) -> f64 {
        match self {
            Activation::Identity => v,
            Activation::ReLU => v.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            Activation::Tanh => v.tanh(),
        }
    }

    /// The derivative of the ideal curve at `v` (used by the functional
    /// training reference).
    pub fn ideal_derivative(self, v: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::ReLU => {
                if v > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = self.ideal(v);
                s * (1.0 - s)
            }
            Activation::Tanh => 1.0 - v.tanh().powi(2),
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::Identity => "identity",
            Activation::ReLU => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        };
        f.write_str(name)
    }
}

/// A materialized hardware look-up table for one activation function.
///
/// Cheap to clone (the table is shared behind an [`Arc`]), so every one of
/// the 16 PNGs can hold the layer's LUT without duplicating storage.
///
/// # Indexing scheme
///
/// Half the table covers the *inner* input range `[-4.0, 4.0)` at fine
/// resolution (where sigmoid/tanh vary) and the other half covers the full
/// `[-128, 128)` range coarsely. Identity and ReLU bypass the table — the
/// hardware implements them with a mux/comparator, and quantizing a straight
/// line through a LUT would inject avoidable noise into every conv layer.
///
/// # Examples
///
/// ```
/// use neurocube_fixed::{Activation, ActivationLut, Q88};
///
/// let lut = ActivationLut::new(Activation::Sigmoid);
/// let y = lut.apply(Q88::ZERO);
/// assert_eq!(y, Q88::from_f64(0.5));
/// ```
#[derive(Clone)]
pub struct ActivationLut {
    kind: Activation,
    inner: Arc<[Q88]>,
    outer: Arc<[Q88]>,
}

const INNER_RANGE: f64 = 4.0;
const OUTER_RANGE: f64 = 128.0;

impl ActivationLut {
    /// Builds the table for `kind` by sampling the ideal curve at each
    /// quantization bucket's midpoint.
    pub fn new(kind: Activation) -> ActivationLut {
        let half = LUT_ENTRIES / 2;
        let build = |range: f64| -> Arc<[Q88]> {
            (0..half)
                .map(|i| {
                    let frac = (i as f64 + 0.5) / half as f64; // (0,1)
                    let v = -range + 2.0 * range * frac;
                    Q88::from_f64(kind.ideal(v))
                })
                .collect()
        };
        ActivationLut {
            kind,
            inner: build(INNER_RANGE),
            outer: build(OUTER_RANGE),
        }
    }

    /// The activation function this table was built for.
    pub fn kind(&self) -> Activation {
        self.kind
    }

    /// Evaluates the activation the way the PNG hardware would: quantize the
    /// input to a table index and return the stored output.
    pub fn apply(&self, y: Q88) -> Q88 {
        match self.kind {
            // Mux/comparator paths: exact.
            Activation::Identity => y,
            Activation::ReLU => y.max(Q88::ZERO),
            _ => {
                let v = y.to_f64();
                let half = LUT_ENTRIES / 2;
                let (table, range) = if v.abs() < INNER_RANGE {
                    (&self.inner, INNER_RANGE)
                } else {
                    (&self.outer, OUTER_RANGE)
                };
                let idx = (((v + range) / (2.0 * range)) * half as f64) as usize;
                table[idx.min(half - 1)]
            }
        }
    }

    /// Maximum absolute error of the table against the ideal curve, sampled
    /// over every representable input. Exposed so tests and documentation
    /// can state the quantization error bound.
    pub fn max_error(&self) -> f64 {
        let mut worst: f64 = 0.0;
        let mut bits = i16::MIN;
        loop {
            let q = Q88::from_bits(bits);
            let got = self.apply(q).to_f64();
            let want = self.kind.ideal(q.to_f64());
            // Compare against the best representable output, not the real line.
            let want_q = Q88::from_f64(want).to_f64();
            worst = worst.max((got - want_q).abs());
            if bits == i16::MAX {
                break;
            }
            bits += 1;
        }
        worst
    }
}

impl fmt::Debug for ActivationLut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActivationLut")
            .field("kind", &self.kind)
            .field("entries", &LUT_ENTRIES)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_exact() {
        let lut = ActivationLut::new(Activation::Identity);
        for bits in [-32768i16, -300, 0, 300, 32767] {
            let q = Q88::from_bits(bits);
            assert_eq!(lut.apply(q), q);
        }
    }

    #[test]
    fn relu_is_exact() {
        let lut = ActivationLut::new(Activation::ReLU);
        assert_eq!(lut.apply(Q88::from_f64(-3.0)), Q88::ZERO);
        assert_eq!(lut.apply(Q88::from_f64(2.5)), Q88::from_f64(2.5));
        assert_eq!(lut.apply(Q88::MIN), Q88::ZERO);
    }

    #[test]
    fn sigmoid_center_and_tails() {
        let lut = ActivationLut::new(Activation::Sigmoid);
        assert_eq!(lut.apply(Q88::ZERO), Q88::from_f64(0.5));
        assert_eq!(lut.apply(Q88::from_f64(100.0)), Q88::ONE);
        assert_eq!(lut.apply(Q88::from_f64(-100.0)), Q88::ZERO);
    }

    #[test]
    fn tanh_is_odd_approximately() {
        let lut = ActivationLut::new(Activation::Tanh);
        for v in [-3.0, -1.0, -0.5, 0.5, 1.0, 3.0] {
            let pos = lut.apply(Q88::from_f64(v)).to_f64();
            let neg = lut.apply(Q88::from_f64(-v)).to_f64();
            // Bucket midpoints are not symmetric about zero (half-open
            // buckets), so oddness holds only within a few output LSBs.
            assert!(
                (pos + neg).abs() <= 4.0 / 256.0 + 1e-12,
                "tanh({v}) = {pos}, tanh({}) = {neg}",
                -v
            );
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        // Inner segment step is 8/512 = 1/64 in input space; sigmoid slope
        // <= 1/4 so output error <~ 1/256 + one output LSB.
        let err = ActivationLut::new(Activation::Sigmoid).max_error();
        assert!(err <= 3.0 / 256.0, "sigmoid LUT error {err}");
        let err = ActivationLut::new(Activation::Tanh).max_error();
        assert!(err <= 9.0 / 256.0, "tanh LUT error {err}");
    }

    #[test]
    fn clone_shares_table() {
        let lut = ActivationLut::new(Activation::Sigmoid);
        let c = lut.clone();
        assert!(Arc::ptr_eq(&lut.inner, &c.inner));
    }

    #[test]
    fn derivative_signs() {
        assert_eq!(Activation::ReLU.ideal_derivative(-1.0), 0.0);
        assert_eq!(Activation::ReLU.ideal_derivative(1.0), 1.0);
        assert!((Activation::Sigmoid.ideal_derivative(0.0) - 0.25).abs() < 1e-12);
        assert!((Activation::Tanh.ideal_derivative(0.0) - 1.0).abs() < 1e-12);
        assert_eq!(Activation::Identity.ideal_derivative(5.0), 1.0);
    }
}
