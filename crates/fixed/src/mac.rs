//! Multiply-accumulate semantics of a single Neurocube MAC unit.

use crate::q88::{saturate, FRAC_BITS, Q88};

/// Width of the accumulation register inside a MAC unit.
///
/// The paper's Table II lists the MAC datapath as 16-bit but leaves the
/// internal accumulator width unspecified. Both plausible hardware choices
/// are modeled so their accuracy impact can be measured (an ablation in the
/// benchmark suite):
///
/// * [`Wide32`](AccumulatorWidth::Wide32) — products are accumulated in a
///   32-bit register at `Q16.16` scale and renormalized once at the end.
///   This is the default and what every fixed-point DSP MAC does.
/// * [`Narrow16`](AccumulatorWidth::Narrow16) — each product is immediately
///   renormalized and saturated to 16 bits before accumulation, so long dot
///   products can saturate early.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AccumulatorWidth {
    /// 32-bit internal accumulator (default).
    #[default]
    Wide32,
    /// 16-bit accumulator with per-step saturation.
    Narrow16,
}

/// One multiply-accumulate unit.
///
/// A Neurocube PE contains `n_MAC` of these (16 in the paper's design
/// point). Each accepts one `(weight, state)` operand pair per MAC cycle and
/// accumulates the running sum for a single output neuron
/// (Eq. 1: `y_i = Σ_k w_ik · x_k`).
///
/// # Examples
///
/// ```
/// use neurocube_fixed::{MacUnit, Q88, AccumulatorWidth};
///
/// let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
/// for k in 0..4 {
///     mac.accumulate(Q88::from_f64(0.25), Q88::from_int(k));
/// }
/// assert_eq!(mac.result().to_f64(), 1.5); // 0.25 * (0+1+2+3)
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MacUnit {
    width: AccumulatorWidth,
    wide_acc: i64,
    narrow_acc: Q88,
    ops: u64,
}

impl MacUnit {
    /// Creates a cleared MAC unit with the given accumulator width.
    pub fn new(width: AccumulatorWidth) -> MacUnit {
        MacUnit {
            width,
            wide_acc: 0,
            narrow_acc: Q88::ZERO,
            ops: 0,
        }
    }

    /// Accumulates one `weight * state` product.
    #[inline]
    pub fn accumulate(&mut self, weight: Q88, state: Q88) {
        match self.width {
            AccumulatorWidth::Wide32 => {
                self.wide_acc += i64::from(weight.wide_product(state));
                // Model the 32-bit register: clamp to i32 range at Q16.16.
                self.wide_acc = self
                    .wide_acc
                    .clamp(i64::from(i32::MIN), i64::from(i32::MAX));
            }
            AccumulatorWidth::Narrow16 => {
                self.narrow_acc = self.narrow_acc.saturating_add(weight.saturating_mul(state));
            }
        }
        self.ops += 1;
    }

    /// Reads the accumulated sum, renormalized and saturated to `Q1.7.8`.
    #[inline]
    pub fn result(&self) -> Q88 {
        match self.width {
            AccumulatorWidth::Wide32 => {
                Q88::from_bits(saturate((self.wide_acc >> FRAC_BITS) as i32))
            }
            AccumulatorWidth::Narrow16 => self.narrow_acc,
        }
    }

    /// Clears the accumulator for the next output neuron. The operation
    /// counter is preserved (it tracks lifetime MAC operations for the power
    /// model's activity factor).
    #[inline]
    pub fn clear(&mut self) {
        self.wide_acc = 0;
        self.narrow_acc = Q88::ZERO;
    }

    /// Total multiply-accumulate operations performed since construction.
    #[inline]
    pub fn ops_performed(&self) -> u64 {
        self.ops
    }

    /// The accumulator width this unit was built with.
    #[inline]
    pub fn width(&self) -> AccumulatorWidth {
        self.width
    }
}

/// Computes a full dot product with the given accumulator semantics.
///
/// Convenience used by the functional reference executor so that it shares
/// the exact arithmetic of the cycle-level simulator.
///
/// # Panics
///
/// Panics if `weights` and `states` have different lengths.
pub fn dot(weights: &[Q88], states: &[Q88], width: AccumulatorWidth) -> Q88 {
    assert_eq!(
        weights.len(),
        states.len(),
        "dot product operand lengths differ"
    );
    let mut mac = MacUnit::new(width);
    for (&w, &x) in weights.iter().zip(states) {
        mac.accumulate(w, x);
    }
    mac.result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_accumulator_sums_exactly() {
        let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
        for _ in 0..100 {
            mac.accumulate(Q88::from_f64(0.5), Q88::from_f64(0.5));
        }
        assert_eq!(mac.result().to_f64(), 25.0);
        assert_eq!(mac.ops_performed(), 100);
    }

    #[test]
    fn narrow_accumulator_saturates_early() {
        let mut mac = MacUnit::new(AccumulatorWidth::Narrow16);
        for _ in 0..300 {
            mac.accumulate(Q88::ONE, Q88::ONE);
        }
        assert_eq!(mac.result(), Q88::MAX);
    }

    #[test]
    fn wide_accumulator_saturates_at_32_bits() {
        let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
        // 127 * 127 ~ 16k per op; ~520k ops overflows Q16.16's +-32768 range
        // long before i32 wraps. Clamp keeps the result at MAX.
        for _ in 0..600_000 {
            mac.accumulate(Q88::MAX, Q88::MAX);
        }
        assert_eq!(mac.result(), Q88::MAX);
    }

    #[test]
    fn clear_resets_value_but_not_op_count() {
        let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
        mac.accumulate(Q88::ONE, Q88::ONE);
        mac.clear();
        assert_eq!(mac.result(), Q88::ZERO);
        assert_eq!(mac.ops_performed(), 1);
    }

    #[test]
    fn dot_matches_manual_accumulation() {
        let w: Vec<Q88> = [0.5, -0.25, 1.0]
            .iter()
            .map(|&v| Q88::from_f64(v))
            .collect();
        let x: Vec<Q88> = [2.0, 4.0, -1.5].iter().map(|&v| Q88::from_f64(v)).collect();
        let got = dot(&w, &x, AccumulatorWidth::Wide32);
        assert_eq!(got.to_f64(), 0.5 * 2.0 - 0.25 * 4.0 - 1.5);
    }

    #[test]
    #[should_panic(expected = "operand lengths differ")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[Q88::ONE], &[], AccumulatorWidth::Wide32);
    }

    #[test]
    fn wide_and_narrow_agree_when_no_saturation() {
        let w: Vec<Q88> = (0..8).map(|i| Q88::from_f64(f64::from(i) / 16.0)).collect();
        let x: Vec<Q88> = (0..8).map(|i| Q88::from_f64(f64::from(i) / 8.0)).collect();
        // All partial sums stay tiny, but truncation happens at different
        // points; both paths should agree because every product here has an
        // exact Q8.8 representation (multiples of 1/128 * 1/8 = 1/1024...
        // pick values whose product is a multiple of 1/256).
        let w: Vec<Q88> = w.iter().map(|_| Q88::from_f64(0.5)).collect();
        let a = dot(&w, &x, AccumulatorWidth::Wide32);
        let b = dot(&w, &x, AccumulatorWidth::Narrow16);
        assert_eq!(a, b);
    }
}
