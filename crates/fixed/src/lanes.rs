//! Batch lane kernels over raw `Q1.7.8` bit patterns — the arithmetic
//! core of the PE's struct-of-arrays MAC path.
//!
//! A Neurocube PE fires all of its MAC lanes in lockstep, and the per-lane
//! state is 16-bit fixed point, so one firing is a short vector of
//! independent 16-bit multiply-accumulates — exactly the shape
//! autovectorizers reward. These kernels operate on flat `i16`/`i32`
//! slices (the SoA layout the PE keeps) and are branch-free per lane, so a
//! 16-lane fire compiles to a handful of SIMD instructions.
//!
//! # Bit-exactness with [`MacUnit`](crate::MacUnit)
//!
//! The kernels are *derived* from, and pinned bit-for-bit against, the
//! scalar [`MacUnit::accumulate`](crate::MacUnit::accumulate) semantics
//! (the `NEUROCUBE_NO_SIMD=1` oracle path):
//!
//! * **Wide32.** The scalar unit adds the `Q16.16` product into an `i64`
//!   and clamps to the `i32` register range *after every step*, so the
//!   accumulator always fits in `i32` when a step begins. An `i16 × i16`
//!   product always fits in `i32` (`|p| ≤ 2^30`), therefore
//!   `clamp_i32(acc + p)` computed in `i64` is exactly
//!   `i32::saturating_add(acc, p)` — one widening multiply and one
//!   saturating add per lane, no `i64` anywhere.
//! * **Narrow16.** The scalar unit renormalizes each product to `Q1.7.8`
//!   (arithmetic shift right by 8, saturate to `i16`) and then does a
//!   16-bit saturating add; the lane kernel performs the identical two
//!   operations on raw bits.
//!
//! The equivalence is enforced at every saturation and rounding boundary
//! by the `lane_kernels_match_mac_unit` proptests (fixed crate) and the
//! full-system scalar/SoA registry-identity suite (integration tests).

use crate::q88::{saturate, FRAC_BITS};

/// Accumulates one `weight × state` product into every lane of a `Wide32`
/// accumulator bank: `acc[m] = sat32(acc[m] + w[m] * x[m])`.
///
/// Slices must have equal lengths (the PE passes `..active` sub-slices of
/// its fixed-size lane arrays).
///
/// # Panics
///
/// Panics if the slice lengths differ.
///
/// # Examples
///
/// ```
/// use neurocube_fixed::{accumulate_wide_lanes, wide_result_bits, Q88};
/// let w = Q88::from_f64(0.5).to_bits();
/// let x = Q88::from_f64(3.0).to_bits();
/// let mut acc = [0i32; 4];
/// accumulate_wide_lanes(&mut acc, &[w; 4], &[x; 4]);
/// assert_eq!(Q88::from_bits(wide_result_bits(acc[0])).to_f64(), 1.5);
/// ```
#[inline]
pub fn accumulate_wide_lanes(acc: &mut [i32], weights: &[i16], states: &[i16]) {
    assert_eq!(acc.len(), weights.len(), "lane count mismatch");
    assert_eq!(acc.len(), states.len(), "lane count mismatch");
    for m in 0..acc.len() {
        acc[m] = acc[m].saturating_add(i32::from(weights[m]) * i32::from(states[m]));
    }
}

/// Accumulates one `weight × state` product into every lane of a
/// `Narrow16` accumulator bank: each product is renormalized to `Q1.7.8`
/// (arithmetic `>> 8`, saturate) before a 16-bit saturating add — the
/// per-step-saturating hardware variant.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn accumulate_narrow_lanes(acc: &mut [i16], weights: &[i16], states: &[i16]) {
    assert_eq!(acc.len(), weights.len(), "lane count mismatch");
    assert_eq!(acc.len(), states.len(), "lane count mismatch");
    for m in 0..acc.len() {
        let product = saturate((i32::from(weights[m]) * i32::from(states[m])) >> FRAC_BITS);
        acc[m] = acc[m].saturating_add(product);
    }
}

/// Renormalizes one `Wide32` lane accumulator back to `Q1.7.8` raw bits —
/// the MAC's output stage (`Q88::from_wide` restricted to the `i32` range
/// the per-step clamp guarantees).
#[inline]
pub fn wide_result_bits(acc: i32) -> i16 {
    saturate(acc >> FRAC_BITS)
}

/// One operand side of a masked lane fire: either a per-lane slice (the
/// PE's slot array) or a single value broadcast to every lane (a `Local`
/// weight or `Shared` state).
#[derive(Clone, Copy, Debug)]
pub enum LaneSrc<'a> {
    /// Per-lane operands; indexed by lane number.
    Lanes(&'a [i16]),
    /// One operand value for every lane.
    Splat(i16),
}

impl LaneSrc<'_> {
    #[inline]
    fn get(&self, m: usize) -> i16 {
        match *self {
            LaneSrc::Lanes(s) => s[m],
            LaneSrc::Splat(v) => v,
        }
    }
}

/// [`accumulate_wide_lanes`] with the weight operand broadcast to every
/// lane — the `WeightMode::Local` fire shape, fired directly on the PE's
/// state slot array with no scratch-row copy.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn accumulate_wide_broadcast_weight(acc: &mut [i32], weight: i16, states: &[i16]) {
    assert_eq!(acc.len(), states.len(), "lane count mismatch");
    let w = i32::from(weight);
    for m in 0..acc.len() {
        acc[m] = acc[m].saturating_add(w * i32::from(states[m]));
    }
}

/// [`accumulate_narrow_lanes`] with the weight operand broadcast to every
/// lane.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn accumulate_narrow_broadcast_weight(acc: &mut [i16], weight: i16, states: &[i16]) {
    assert_eq!(acc.len(), states.len(), "lane count mismatch");
    let w = i32::from(weight);
    for m in 0..acc.len() {
        let product = saturate((w * i32::from(states[m])) >> FRAC_BITS);
        acc[m] = acc[m].saturating_add(product);
    }
}

/// [`accumulate_wide_lanes`] with the state operand broadcast to every
/// lane — the `StateMode::Shared` fire shape (fully connected layers),
/// fired directly on the PE's weight slot array with no scratch-row copy.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn accumulate_wide_broadcast_state(acc: &mut [i32], weights: &[i16], state: i16) {
    assert_eq!(acc.len(), weights.len(), "lane count mismatch");
    let x = i32::from(state);
    for m in 0..acc.len() {
        acc[m] = acc[m].saturating_add(i32::from(weights[m]) * x);
    }
}

/// [`accumulate_narrow_lanes`] with the state operand broadcast to every
/// lane.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn accumulate_narrow_broadcast_state(acc: &mut [i16], weights: &[i16], state: i16) {
    assert_eq!(acc.len(), weights.len(), "lane count mismatch");
    let x = i32::from(state);
    for m in 0..acc.len() {
        let product = saturate((i32::from(weights[m]) * x) >> FRAC_BITS);
        acc[m] = acc[m].saturating_add(product);
    }
}

/// Masked `Wide32` fire: accumulates only the lanes whose bit is set in
/// `live`, iterating set bits instead of scanning the whole row. The
/// gated (cleared) lanes' accumulators are untouched — which is bitwise
/// identical to a dense fire *when every gated lane holds a zero operand*
/// (`0·x = 0`, and `saturating_add(0)` is the identity), the only way the
/// PE ever calls this.
///
/// # Panics
///
/// Panics if `live` names a lane at or beyond `acc.len()`, or if a
/// [`LaneSrc::Lanes`] operand is shorter than a live lane index.
///
/// # Examples
///
/// ```
/// use neurocube_fixed::{accumulate_wide_lanes, accumulate_wide_masked, LaneSrc};
/// let w = [256i16, 0, -256, 0];
/// let x = [100i16, 999, 50, 999];
/// let mut dense = [0i32; 4];
/// accumulate_wide_lanes(&mut dense, &w, &[100, 0, 50, 0]);
/// let mut masked = [0i32; 4];
/// // Lanes 1 and 3 hold zero operands: skipping them is invisible.
/// accumulate_wide_masked(&mut masked, LaneSrc::Lanes(&w), LaneSrc::Lanes(&x), 0b0101);
/// assert_eq!(dense, masked);
/// ```
#[inline]
pub fn accumulate_wide_masked(
    acc: &mut [i32],
    weights: LaneSrc<'_>,
    states: LaneSrc<'_>,
    live: u64,
) {
    debug_assert!(
        acc.len() >= 64 || live < 1u64 << acc.len(),
        "live lane out of range"
    );
    let mut bits = live;
    while bits != 0 {
        let m = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        acc[m] = acc[m].saturating_add(i32::from(weights.get(m)) * i32::from(states.get(m)));
    }
}

/// Masked `Narrow16` fire — see [`accumulate_wide_masked`] for the
/// masking contract.
///
/// # Panics
///
/// Panics if `live` names a lane at or beyond `acc.len()`, or if a
/// [`LaneSrc::Lanes`] operand is shorter than a live lane index.
#[inline]
pub fn accumulate_narrow_masked(
    acc: &mut [i16],
    weights: LaneSrc<'_>,
    states: LaneSrc<'_>,
    live: u64,
) {
    debug_assert!(
        acc.len() >= 64 || live < 1u64 << acc.len(),
        "live lane out of range"
    );
    let mut bits = live;
    while bits != 0 {
        let m = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let product = saturate((i32::from(weights.get(m)) * i32::from(states.get(m))) >> FRAC_BITS);
        acc[m] = acc[m].saturating_add(product);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::{AccumulatorWidth, MacUnit};
    use crate::q88::Q88;

    /// Drives the scalar unit and the lane kernel through the same operand
    /// sequence and demands identical results after every step.
    fn check_sequence_wide(pairs: &[(i16, i16)]) {
        let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
        let mut acc = [0i32; 1];
        for &(w, x) in pairs {
            mac.accumulate(Q88::from_bits(w), Q88::from_bits(x));
            accumulate_wide_lanes(&mut acc, &[w], &[x]);
            assert_eq!(
                mac.result().to_bits(),
                wide_result_bits(acc[0]),
                "wide lane diverged after ({w}, {x})"
            );
        }
    }

    fn check_sequence_narrow(pairs: &[(i16, i16)]) {
        let mut mac = MacUnit::new(AccumulatorWidth::Narrow16);
        let mut acc = [0i16; 1];
        for &(w, x) in pairs {
            mac.accumulate(Q88::from_bits(w), Q88::from_bits(x));
            accumulate_narrow_lanes(&mut acc, &[w], &[x]);
            assert_eq!(
                mac.result().to_bits(),
                acc[0],
                "narrow lane diverged after ({w}, {x})"
            );
        }
    }

    #[test]
    fn wide_lane_matches_unit_at_register_saturation() {
        // MAX*MAX repeated drives the wide accumulator into its i32 clamp;
        // the saturating_add lane must pin at exactly the same value.
        let pairs: Vec<(i16, i16)> = (0..4096).map(|_| (i16::MAX, i16::MAX)).collect();
        check_sequence_wide(&pairs);
        let pairs: Vec<(i16, i16)> = (0..4096).map(|_| (i16::MIN, i16::MAX)).collect();
        check_sequence_wide(&pairs);
    }

    #[test]
    fn narrow_lane_matches_unit_at_early_saturation() {
        let pairs: Vec<(i16, i16)> = (0..600)
            .map(|i| {
                if i % 2 == 0 {
                    (i16::MAX, i16::MAX)
                } else {
                    (i16::MIN, 257)
                }
            })
            .collect();
        check_sequence_narrow(&pairs);
    }

    #[test]
    fn narrow_truncation_direction_matches() {
        // (-1/256) * (1/2): product -128 >> 8 == -1 (toward -inf), not 0.
        check_sequence_narrow(&[(-1, 128), (1, 128), (-1, -128)]);
    }

    #[test]
    fn multi_lane_independence() {
        let w = [256i16, -256, i16::MAX, 0];
        let x = [512i16, 512, i16::MAX, 123];
        let mut acc = [0i32; 4];
        accumulate_wide_lanes(&mut acc, &w, &x);
        for m in 0..4 {
            let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
            mac.accumulate(Q88::from_bits(w[m]), Q88::from_bits(x[m]));
            assert_eq!(wide_result_bits(acc[m]), mac.result().to_bits(), "lane {m}");
        }
    }

    #[test]
    #[should_panic(expected = "lane count mismatch")]
    fn mismatched_lanes_rejected() {
        accumulate_wide_lanes(&mut [0i32; 2], &[0; 2], &[0; 3]);
    }

    /// Boundary-heavy operand row reused by the variant-equivalence tests.
    fn spiky_row() -> [i16; 8] {
        [i16::MAX, i16::MIN, 256, -256, 0, 1, -1, 12345]
    }

    #[test]
    fn broadcast_weight_matches_dense() {
        for w in [0i16, 256, -1, i16::MAX, i16::MIN] {
            let xs = spiky_row();
            let mut dense_w32 = [123i32; 8];
            let mut bw32 = [123i32; 8];
            accumulate_wide_lanes(&mut dense_w32, &[w; 8], &xs);
            accumulate_wide_broadcast_weight(&mut bw32, w, &xs);
            assert_eq!(dense_w32, bw32, "wide, w={w}");
            let mut dense_n16 = [-7i16; 8];
            let mut bn16 = [-7i16; 8];
            accumulate_narrow_lanes(&mut dense_n16, &[w; 8], &xs);
            accumulate_narrow_broadcast_weight(&mut bn16, w, &xs);
            assert_eq!(dense_n16, bn16, "narrow, w={w}");
        }
    }

    #[test]
    fn broadcast_state_matches_dense() {
        for x in [0i16, 512, -3, i16::MAX, i16::MIN] {
            let ws = spiky_row();
            let mut dense_w32 = [-9i32; 8];
            let mut bw32 = [-9i32; 8];
            accumulate_wide_lanes(&mut dense_w32, &ws, &[x; 8]);
            accumulate_wide_broadcast_state(&mut bw32, &ws, x);
            assert_eq!(dense_w32, bw32, "wide, x={x}");
            let mut dense_n16 = [11i16; 8];
            let mut bn16 = [11i16; 8];
            accumulate_narrow_lanes(&mut dense_n16, &ws, &[x; 8]);
            accumulate_narrow_broadcast_state(&mut bn16, &ws, x);
            assert_eq!(dense_n16, bn16, "narrow, x={x}");
        }
    }

    /// Zero-lane masking is lossless: a dense fire over a row whose gated
    /// lanes hold zero operands equals a masked fire that never visits
    /// them — whatever garbage those lanes carry on the *other* side.
    #[test]
    fn masked_fire_matches_dense_when_gated_lanes_are_zero() {
        let ws = [256i16, 0, i16::MAX, 0, -256, 0, 77, 0];
        let xs_garbage = [100i16, 999, i16::MIN, -1, 50, i16::MAX, -3, 42];
        let xs_zeroed = [100i16, 0, i16::MIN, 0, 50, 0, -3, 0];
        let live = 0b0101_0101u64;
        let mut dense = [5i32; 8];
        accumulate_wide_lanes(&mut dense, &ws, &xs_zeroed);
        let mut masked = [5i32; 8];
        accumulate_wide_masked(
            &mut masked,
            LaneSrc::Lanes(&ws),
            LaneSrc::Lanes(&xs_garbage),
            live,
        );
        assert_eq!(dense, masked);
        let mut dense_n = [-2i16; 8];
        accumulate_narrow_lanes(&mut dense_n, &ws, &xs_zeroed);
        let mut masked_n = [-2i16; 8];
        accumulate_narrow_masked(
            &mut masked_n,
            LaneSrc::Lanes(&ws),
            LaneSrc::Lanes(&xs_garbage),
            live,
        );
        assert_eq!(dense_n, masked_n);
    }

    #[test]
    fn masked_fire_with_full_mask_and_splats_matches_dense() {
        let ws = spiky_row();
        let mut dense = [0i32; 8];
        accumulate_wide_lanes(&mut dense, &ws, &[300; 8]);
        let mut masked = [0i32; 8];
        accumulate_wide_masked(&mut masked, LaneSrc::Lanes(&ws), LaneSrc::Splat(300), 0xFF);
        assert_eq!(dense, masked);
        let mut both = [0i32; 8];
        accumulate_wide_masked(&mut both, LaneSrc::Splat(256), LaneSrc::Splat(256), 0xFF);
        assert_eq!(both, [256i32 * 256; 8]);
    }

    #[test]
    fn masked_fire_with_empty_mask_is_a_no_op() {
        let mut acc = [17i32; 4];
        accumulate_wide_masked(&mut acc, LaneSrc::Splat(999), LaneSrc::Splat(999), 0);
        assert_eq!(acc, [17i32; 4]);
    }
}
