//! Batch lane kernels over raw `Q1.7.8` bit patterns — the arithmetic
//! core of the PE's struct-of-arrays MAC path.
//!
//! A Neurocube PE fires all of its MAC lanes in lockstep, and the per-lane
//! state is 16-bit fixed point, so one firing is a short vector of
//! independent 16-bit multiply-accumulates — exactly the shape
//! autovectorizers reward. These kernels operate on flat `i16`/`i32`
//! slices (the SoA layout the PE keeps) and are branch-free per lane, so a
//! 16-lane fire compiles to a handful of SIMD instructions.
//!
//! # Bit-exactness with [`MacUnit`](crate::MacUnit)
//!
//! The kernels are *derived* from, and pinned bit-for-bit against, the
//! scalar [`MacUnit::accumulate`](crate::MacUnit::accumulate) semantics
//! (the `NEUROCUBE_NO_SIMD=1` oracle path):
//!
//! * **Wide32.** The scalar unit adds the `Q16.16` product into an `i64`
//!   and clamps to the `i32` register range *after every step*, so the
//!   accumulator always fits in `i32` when a step begins. An `i16 × i16`
//!   product always fits in `i32` (`|p| ≤ 2^30`), therefore
//!   `clamp_i32(acc + p)` computed in `i64` is exactly
//!   `i32::saturating_add(acc, p)` — one widening multiply and one
//!   saturating add per lane, no `i64` anywhere.
//! * **Narrow16.** The scalar unit renormalizes each product to `Q1.7.8`
//!   (arithmetic shift right by 8, saturate to `i16`) and then does a
//!   16-bit saturating add; the lane kernel performs the identical two
//!   operations on raw bits.
//!
//! The equivalence is enforced at every saturation and rounding boundary
//! by the `lane_kernels_match_mac_unit` proptests (fixed crate) and the
//! full-system scalar/SoA registry-identity suite (integration tests).

use crate::q88::{saturate, FRAC_BITS};

/// Accumulates one `weight × state` product into every lane of a `Wide32`
/// accumulator bank: `acc[m] = sat32(acc[m] + w[m] * x[m])`.
///
/// Slices must have equal lengths (the PE passes `..active` sub-slices of
/// its fixed-size lane arrays).
///
/// # Panics
///
/// Panics if the slice lengths differ.
///
/// # Examples
///
/// ```
/// use neurocube_fixed::{accumulate_wide_lanes, wide_result_bits, Q88};
/// let w = Q88::from_f64(0.5).to_bits();
/// let x = Q88::from_f64(3.0).to_bits();
/// let mut acc = [0i32; 4];
/// accumulate_wide_lanes(&mut acc, &[w; 4], &[x; 4]);
/// assert_eq!(Q88::from_bits(wide_result_bits(acc[0])).to_f64(), 1.5);
/// ```
#[inline]
pub fn accumulate_wide_lanes(acc: &mut [i32], weights: &[i16], states: &[i16]) {
    assert_eq!(acc.len(), weights.len(), "lane count mismatch");
    assert_eq!(acc.len(), states.len(), "lane count mismatch");
    for m in 0..acc.len() {
        acc[m] = acc[m].saturating_add(i32::from(weights[m]) * i32::from(states[m]));
    }
}

/// Accumulates one `weight × state` product into every lane of a
/// `Narrow16` accumulator bank: each product is renormalized to `Q1.7.8`
/// (arithmetic `>> 8`, saturate) before a 16-bit saturating add — the
/// per-step-saturating hardware variant.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn accumulate_narrow_lanes(acc: &mut [i16], weights: &[i16], states: &[i16]) {
    assert_eq!(acc.len(), weights.len(), "lane count mismatch");
    assert_eq!(acc.len(), states.len(), "lane count mismatch");
    for m in 0..acc.len() {
        let product = saturate((i32::from(weights[m]) * i32::from(states[m])) >> FRAC_BITS);
        acc[m] = acc[m].saturating_add(product);
    }
}

/// Renormalizes one `Wide32` lane accumulator back to `Q1.7.8` raw bits —
/// the MAC's output stage (`Q88::from_wide` restricted to the `i32` range
/// the per-step clamp guarantees).
#[inline]
pub fn wide_result_bits(acc: i32) -> i16 {
    saturate(acc >> FRAC_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::{AccumulatorWidth, MacUnit};
    use crate::q88::Q88;

    /// Drives the scalar unit and the lane kernel through the same operand
    /// sequence and demands identical results after every step.
    fn check_sequence_wide(pairs: &[(i16, i16)]) {
        let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
        let mut acc = [0i32; 1];
        for &(w, x) in pairs {
            mac.accumulate(Q88::from_bits(w), Q88::from_bits(x));
            accumulate_wide_lanes(&mut acc, &[w], &[x]);
            assert_eq!(
                mac.result().to_bits(),
                wide_result_bits(acc[0]),
                "wide lane diverged after ({w}, {x})"
            );
        }
    }

    fn check_sequence_narrow(pairs: &[(i16, i16)]) {
        let mut mac = MacUnit::new(AccumulatorWidth::Narrow16);
        let mut acc = [0i16; 1];
        for &(w, x) in pairs {
            mac.accumulate(Q88::from_bits(w), Q88::from_bits(x));
            accumulate_narrow_lanes(&mut acc, &[w], &[x]);
            assert_eq!(
                mac.result().to_bits(),
                acc[0],
                "narrow lane diverged after ({w}, {x})"
            );
        }
    }

    #[test]
    fn wide_lane_matches_unit_at_register_saturation() {
        // MAX*MAX repeated drives the wide accumulator into its i32 clamp;
        // the saturating_add lane must pin at exactly the same value.
        let pairs: Vec<(i16, i16)> = (0..4096).map(|_| (i16::MAX, i16::MAX)).collect();
        check_sequence_wide(&pairs);
        let pairs: Vec<(i16, i16)> = (0..4096).map(|_| (i16::MIN, i16::MAX)).collect();
        check_sequence_wide(&pairs);
    }

    #[test]
    fn narrow_lane_matches_unit_at_early_saturation() {
        let pairs: Vec<(i16, i16)> = (0..600)
            .map(|i| {
                if i % 2 == 0 {
                    (i16::MAX, i16::MAX)
                } else {
                    (i16::MIN, 257)
                }
            })
            .collect();
        check_sequence_narrow(&pairs);
    }

    #[test]
    fn narrow_truncation_direction_matches() {
        // (-1/256) * (1/2): product -128 >> 8 == -1 (toward -inf), not 0.
        check_sequence_narrow(&[(-1, 128), (1, 128), (-1, -128)]);
    }

    #[test]
    fn multi_lane_independence() {
        let w = [256i16, -256, i16::MAX, 0];
        let x = [512i16, 512, i16::MAX, 123];
        let mut acc = [0i32; 4];
        accumulate_wide_lanes(&mut acc, &w, &x);
        for m in 0..4 {
            let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
            mac.accumulate(Q88::from_bits(w[m]), Q88::from_bits(x[m]));
            assert_eq!(wide_result_bits(acc[m]), mac.result().to_bits(), "lane {m}");
        }
    }

    #[test]
    #[should_panic(expected = "lane count mismatch")]
    fn mismatched_lanes_rejected() {
        accumulate_wide_lanes(&mut [0i32; 2], &[0; 2], &[0; 3]);
    }
}
