//! 16-bit fixed-point arithmetic for the Neurocube simulator.
//!
//! The Neurocube paper (§III-B-1) represents both neuron states and synaptic
//! weights as 16-bit fixed-point values in the `Q1.7.8` format: one sign bit,
//! seven integer bits and eight fractional bits. This crate provides:
//!
//! * [`Q88`] — the value type, with saturating arithmetic matching what a
//!   16-bit datapath would produce,
//! * [`MacUnit`] — the multiply-accumulate semantics of a single Neurocube
//!   MAC, with a configurable accumulator width,
//! * [`ActivationLut`] — the look-up-table evaluation of non-linear
//!   activation functions exactly as the PNG's LUT hardware would compute
//!   them (§IV-A).
//!
//! Everything here is deterministic and `no_std`-friendly in spirit (no
//! allocation outside the LUT), so the cycle-level simulator built on top can
//! be compared bit-for-bit against the functional reference executor.
//!
//! # Examples
//!
//! ```
//! use neurocube_fixed::{Q88, MacUnit, AccumulatorWidth};
//!
//! let w = Q88::from_f64(0.5);
//! let x = Q88::from_f64(3.25);
//! let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
//! mac.accumulate(w, x);
//! mac.accumulate(w, x);
//! assert_eq!(mac.result().to_f64(), 3.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lanes;
mod lut;
mod mac;
mod q88;

pub use lanes::{
    accumulate_narrow_broadcast_state, accumulate_narrow_broadcast_weight, accumulate_narrow_lanes,
    accumulate_narrow_masked, accumulate_wide_broadcast_state, accumulate_wide_broadcast_weight,
    accumulate_wide_lanes, accumulate_wide_masked, wide_result_bits, LaneSrc,
};
pub use lut::{Activation, ActivationLut, LUT_ENTRIES};
pub use mac::{dot, AccumulatorWidth, MacUnit};
pub use q88::{ParseQ88Error, Q88};
