//! The `Q1.7.8` fixed-point value type.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};
use core::str::FromStr;

/// Number of fractional bits in the `Q1.7.8` format.
pub(crate) const FRAC_BITS: u32 = 8;
/// Scale factor (`2^FRAC_BITS`).
pub(crate) const SCALE: i32 = 1 << FRAC_BITS;

/// A 16-bit fixed-point number in the paper's `Q1.7.8` format
/// (1 sign bit, 7 integer bits, 8 fractional bits).
///
/// Representable range is `[-128.0, 127.99609375]` with a resolution of
/// `1/256`. All arithmetic saturates at the format boundaries, the behaviour
/// of the synthesized 16-bit datapath the paper describes, rather than
/// wrapping.
///
/// # Examples
///
/// ```
/// use neurocube_fixed::Q88;
///
/// let a = Q88::from_f64(1.5);
/// let b = Q88::from_f64(-0.25);
/// assert_eq!((a + b).to_f64(), 1.25);
/// assert_eq!((a * b).to_f64(), -0.375);
/// // Saturation:
/// assert_eq!((Q88::MAX + Q88::ONE), Q88::MAX);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Q88(i16);

impl Q88 {
    /// The additive identity (`0.0`).
    pub const ZERO: Q88 = Q88(0);
    /// The multiplicative identity (`1.0`).
    pub const ONE: Q88 = Q88(SCALE as i16);
    /// The most positive representable value (`127.99609375`).
    pub const MAX: Q88 = Q88(i16::MAX);
    /// The most negative representable value (`-128.0`).
    pub const MIN: Q88 = Q88(i16::MIN);
    /// The smallest positive increment (`1/256`).
    pub const EPSILON: Q88 = Q88(1);

    /// Creates a value directly from its raw 16-bit two's-complement
    /// representation (the exact bit pattern stored in DRAM and carried in
    /// NoC packet payloads).
    #[inline]
    pub const fn from_bits(bits: i16) -> Q88 {
        Q88(bits)
    }

    /// Returns the raw 16-bit representation.
    #[inline]
    pub const fn to_bits(self) -> i16 {
        self.0
    }

    /// Converts from a signed integer, saturating to the representable range.
    ///
    /// ```
    /// use neurocube_fixed::Q88;
    /// assert_eq!(Q88::from_int(3).to_f64(), 3.0);
    /// assert_eq!(Q88::from_int(1000), Q88::MAX);
    /// ```
    #[inline]
    pub const fn from_int(v: i32) -> Q88 {
        Q88(saturate(v.saturating_mul(SCALE)))
    }

    /// Converts from `f64`, rounding to the nearest representable value and
    /// saturating at the format boundaries. `NaN` maps to zero.
    pub fn from_f64(v: f64) -> Q88 {
        if v.is_nan() {
            return Q88::ZERO;
        }
        let scaled = (v * SCALE as f64).round();
        if scaled >= i16::MAX as f64 {
            Q88::MAX
        } else if scaled <= i16::MIN as f64 {
            Q88::MIN
        } else {
            Q88(scaled as i16)
        }
    }

    /// Converts to `f64` exactly (every `Q88` value is representable).
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from(self.0) / f64::from(SCALE)
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: Q88) -> Q88 {
        Q88(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: Q88) -> Q88 {
        Q88(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication.
    ///
    /// The 16×16-bit product is computed in 32 bits, then truncated toward
    /// negative infinity back to `Q1.7.8` (an arithmetic right shift by 8 —
    /// the cheapest hardware realization and the one we fix for bit-exact
    /// reproducibility between the timing simulator and the functional
    /// reference).
    #[inline]
    pub const fn saturating_mul(self, rhs: Q88) -> Q88 {
        let wide = (self.0 as i32) * (rhs.0 as i32);
        Q88(saturate(wide >> FRAC_BITS))
    }

    /// The absolute value, saturating (`|MIN|` is not representable).
    #[inline]
    pub const fn saturating_abs(self) -> Q88 {
        Q88(self.0.saturating_abs())
    }

    /// Returns the widened 32-bit product `self * rhs` in `Q2.14.16` scale
    /// (`value × 2^16`) *before* renormalization — what a MAC's multiplier
    /// array produces, exposed so gradient accumulation in the training
    /// reference can mirror the hardware's wide-accumulator semantics.
    ///
    /// ```
    /// use neurocube_fixed::Q88;
    /// let p = Q88::from_f64(0.5).wide_product(Q88::from_f64(0.5));
    /// assert_eq!(Q88::from_wide(i64::from(p)), Q88::from_f64(0.25));
    /// ```
    #[inline]
    pub const fn wide_product(self, rhs: Q88) -> i32 {
        (self.0 as i32) * (rhs.0 as i32)
    }

    /// Renormalizes a wide accumulator value (sum of
    /// [`wide_product`](Self::wide_product) terms, clamped to the 32-bit
    /// register range) back to `Q1.7.8`, saturating — the MAC's output
    /// stage.
    #[inline]
    pub const fn from_wide(acc: i64) -> Q88 {
        let clamped = if acc > i32::MAX as i64 {
            i32::MAX as i64
        } else if acc < i32::MIN as i64 {
            i32::MIN as i64
        } else {
            acc
        };
        Q88(saturate((clamped >> FRAC_BITS) as i32))
    }

    /// `true` if the value is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Minimum of two values.
    #[inline]
    pub fn min(self, other: Q88) -> Q88 {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Maximum of two values.
    #[inline]
    pub fn max(self, other: Q88) -> Q88 {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

/// Saturates a 32-bit intermediate to the 16-bit range.
#[inline]
pub(crate) const fn saturate(v: i32) -> i16 {
    if v > i16::MAX as i32 {
        i16::MAX
    } else if v < i16::MIN as i32 {
        i16::MIN
    } else {
        v as i16
    }
}

impl Add for Q88 {
    type Output = Q88;
    #[inline]
    fn add(self, rhs: Q88) -> Q88 {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Q88 {
    #[inline]
    fn add_assign(&mut self, rhs: Q88) {
        *self = *self + rhs;
    }
}

impl Sub for Q88 {
    type Output = Q88;
    #[inline]
    fn sub(self, rhs: Q88) -> Q88 {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Q88 {
    #[inline]
    fn sub_assign(&mut self, rhs: Q88) {
        *self = *self - rhs;
    }
}

impl Mul for Q88 {
    type Output = Q88;
    #[inline]
    fn mul(self, rhs: Q88) -> Q88 {
        self.saturating_mul(rhs)
    }
}

impl Neg for Q88 {
    type Output = Q88;
    #[inline]
    fn neg(self) -> Q88 {
        Q88(self.0.saturating_neg())
    }
}

impl Sum for Q88 {
    fn sum<I: Iterator<Item = Q88>>(iter: I) -> Q88 {
        iter.fold(Q88::ZERO, Q88::saturating_add)
    }
}

impl From<i8> for Q88 {
    /// Every `i8` integer value is exactly representable.
    fn from(v: i8) -> Q88 {
        Q88((i16::from(v)) << FRAC_BITS)
    }
}

impl fmt::Debug for Q88 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q88({})", self.to_f64())
    }
}

impl fmt::Display for Q88 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

/// Error returned when parsing a [`Q88`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQ88Error;

impl fmt::Display for ParseQ88Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("provided string was not a valid fixed-point number")
    }
}

impl std::error::Error for ParseQ88Error {}

impl FromStr for Q88 {
    type Err = ParseQ88Error;

    /// Parses a decimal number and rounds it to the nearest representable
    /// `Q1.7.8` value, saturating at the boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`ParseQ88Error`] if the string is not a decimal number.
    fn from_str(s: &str) -> Result<Q88, ParseQ88Error> {
        let v: f64 = s.parse().map_err(|_| ParseQ88Error)?;
        if v.is_nan() {
            return Err(ParseQ88Error);
        }
        Ok(Q88::from_f64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_correct() {
        assert_eq!(Q88::ZERO.to_f64(), 0.0);
        assert_eq!(Q88::ONE.to_f64(), 1.0);
        assert_eq!(Q88::MIN.to_f64(), -128.0);
        assert!((Q88::MAX.to_f64() - 127.99609375).abs() < 1e-12);
        assert_eq!(Q88::EPSILON.to_f64(), 1.0 / 256.0);
    }

    #[test]
    fn roundtrip_through_bits() {
        for bits in [-32768i16, -1, 0, 1, 255, 256, 32767] {
            assert_eq!(Q88::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn from_f64_rounds_to_nearest() {
        assert_eq!(Q88::from_f64(0.5).to_bits(), 128);
        // 0.001953125 == 0.5/256, rounds to 1/256 (ties away handled by round())
        assert_eq!(Q88::from_f64(1.0 / 512.0).to_bits(), 1);
        assert_eq!(Q88::from_f64(-1.0 / 512.0).to_bits(), -1);
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q88::from_f64(1e9), Q88::MAX);
        assert_eq!(Q88::from_f64(-1e9), Q88::MIN);
        assert_eq!(Q88::from_f64(f64::NAN), Q88::ZERO);
    }

    #[test]
    fn addition_saturates() {
        assert_eq!(Q88::MAX + Q88::ONE, Q88::MAX);
        assert_eq!(Q88::MIN + (-Q88::ONE), Q88::MIN);
        assert_eq!(
            Q88::from_f64(1.5) + Q88::from_f64(2.25),
            Q88::from_f64(3.75)
        );
    }

    #[test]
    fn multiplication_matches_reference() {
        let cases = [
            (1.5, 2.0, 3.0),
            (-1.5, 2.0, -3.0),
            (0.5, 0.5, 0.25),
            (127.0, 127.0, 127.99609375),
        ];
        for (a, b, want) in cases {
            assert_eq!(
                (Q88::from_f64(a) * Q88::from_f64(b)).to_f64(),
                want,
                "{a} * {b}"
            );
        }
    }

    #[test]
    fn multiplication_truncates_toward_neg_infinity() {
        // (-1/256) * (1/2) = -1/512, which truncates (>>8) down to -1/256.
        let a = Q88::from_bits(-1);
        let b = Q88::from_f64(0.5);
        assert_eq!((a * b).to_bits(), -1);
        // Positive counterpart truncates to zero.
        let c = Q88::from_bits(1);
        assert_eq!((c * b).to_bits(), 0);
    }

    #[test]
    fn negation_saturates_min() {
        assert_eq!(-Q88::MIN, Q88::MAX);
        assert_eq!((-Q88::ONE).to_f64(), -1.0);
    }

    #[test]
    fn sum_folds_with_saturation() {
        let total: Q88 = (0..1000).map(|_| Q88::ONE).sum();
        assert_eq!(total, Q88::MAX);
        let small: Q88 = (0..4).map(|_| Q88::from_f64(0.25)).sum();
        assert_eq!(small, Q88::ONE);
    }

    #[test]
    fn parse_from_str() {
        assert_eq!("1.5".parse::<Q88>().unwrap(), Q88::from_f64(1.5));
        assert_eq!("-0.25".parse::<Q88>().unwrap(), Q88::from_f64(-0.25));
        assert_eq!("1e9".parse::<Q88>().unwrap(), Q88::MAX);
        assert!("not a number".parse::<Q88>().is_err());
        assert!("NaN".parse::<Q88>().is_err());
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", Q88::from_f64(1.5)), "1.5");
        assert_eq!(format!("{:?}", Q88::ZERO), "Q88(0)");
    }

    #[test]
    fn ordering_matches_numeric_value() {
        assert!(Q88::from_f64(-1.0) < Q88::ZERO);
        assert!(Q88::from_f64(2.5) > Q88::from_f64(2.25));
        assert_eq!(
            Q88::from_f64(3.0).max(Q88::from_f64(-3.0)),
            Q88::from_f64(3.0)
        );
        assert_eq!(
            Q88::from_f64(3.0).min(Q88::from_f64(-3.0)),
            Q88::from_f64(-3.0)
        );
    }

    #[test]
    fn from_i8_is_exact() {
        assert_eq!(Q88::from(-128i8).to_f64(), -128.0);
        assert_eq!(Q88::from(127i8).to_f64(), 127.0);
    }
}
