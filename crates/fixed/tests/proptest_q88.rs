//! Property-based tests for the fixed-point substrate.

use neurocube_fixed::{AccumulatorWidth, MacUnit, Q88};
use proptest::prelude::*;

fn any_q88() -> impl Strategy<Value = Q88> {
    any::<i16>().prop_map(Q88::from_bits)
}

proptest! {
    #[test]
    fn add_is_commutative(a in any_q88(), b in any_q88()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn mul_is_commutative(a in any_q88(), b in any_q88()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn add_zero_is_identity(a in any_q88()) {
        prop_assert_eq!(a + Q88::ZERO, a);
    }

    #[test]
    fn mul_one_is_identity(a in any_q88()) {
        prop_assert_eq!(a * Q88::ONE, a);
    }

    #[test]
    fn mul_zero_is_zero(a in any_q88()) {
        prop_assert_eq!(a * Q88::ZERO, Q88::ZERO);
    }

    #[test]
    fn add_never_overflows_range(a in any_q88(), b in any_q88()) {
        let s = (a + b).to_f64();
        prop_assert!((-128.0..=127.99609375).contains(&s));
    }

    #[test]
    fn mul_error_vs_real_is_one_ulp(a in -11.0f64..11.0, b in -11.0f64..11.0) {
        // Inside the non-saturating region, fixed-point multiply is within
        // one truncation ULP below / rounding noise above the real product.
        let qa = Q88::from_f64(a);
        let qb = Q88::from_f64(b);
        let real = qa.to_f64() * qb.to_f64();
        let got = (qa * qb).to_f64();
        prop_assert!(got <= real + 1e-12, "got {got} real {real}");
        prop_assert!(got >= real - 1.0 / 256.0 - 1e-12, "got {got} real {real}");
    }

    #[test]
    fn roundtrip_f64(a in any_q88()) {
        prop_assert_eq!(Q88::from_f64(a.to_f64()), a);
    }

    #[test]
    fn neg_is_involutive_away_from_min(bits in -32767i16..=32767) {
        let a = Q88::from_bits(bits);
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn wide_mac_matches_f64_within_bound(
        pairs in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..64)
    ) {
        let mut mac = MacUnit::new(AccumulatorWidth::Wide32);
        let mut ideal = 0.0;
        for &(w, x) in &pairs {
            let qw = Q88::from_f64(w);
            let qx = Q88::from_f64(x);
            mac.accumulate(qw, qx);
            ideal += qw.to_f64() * qx.to_f64();
        }
        let got = mac.result().to_f64();
        // Wide accumulation truncates exactly once at the end.
        prop_assert!((got - ideal).abs() <= 1.0 / 256.0 + 1e-9,
            "got {got} ideal {ideal} over {} pairs", pairs.len());
    }

    #[test]
    fn narrow_mac_never_exceeds_wide_by_much_when_small(
        pairs in proptest::collection::vec((-0.1f64..0.1, -0.1f64..0.1), 1..32)
    ) {
        let mut wide = MacUnit::new(AccumulatorWidth::Wide32);
        let mut narrow = MacUnit::new(AccumulatorWidth::Narrow16);
        for &(w, x) in &pairs {
            let qw = Q88::from_f64(w);
            let qx = Q88::from_f64(x);
            wide.accumulate(qw, qx);
            narrow.accumulate(qw, qx);
        }
        // With per-step truncation the narrow path can lose up to one ULP per
        // step relative to the wide path, and never gains more than one ULP.
        let diff = wide.result().to_f64() - narrow.result().to_f64();
        prop_assert!(diff >= -1.0 / 256.0 - 1e-12);
        prop_assert!(diff <= pairs.len() as f64 / 256.0 + 1e-12);
    }
}
