//! Property-based tests for the activation lookup tables: monotonicity,
//! the odd/complement symmetries of the underlying functions, bypass
//! exactness, and agreement with the exhaustively computed error
//! certificate.

use neurocube_fixed::{Activation, ActivationLut, Q88};
use proptest::prelude::*;

const LSB: f64 = 1.0 / 256.0;

fn any_q88() -> impl Strategy<Value = Q88> {
    any::<i16>().prop_map(Q88::from_bits)
}

proptest! {
    /// Sigmoid and tanh are monotone; their two-segment tables (fine inner,
    /// coarse outer) must preserve that ordering across every bucket and
    /// across the segment crossover at ±4.
    #[test]
    fn lut_preserves_monotonicity(a in any_q88(), b in any_q88()) {
        for act in [Activation::Sigmoid, Activation::Tanh] {
            let lut = ActivationLut::new(act);
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(
                lut.apply(lo) <= lut.apply(hi),
                "{act:?} not monotone: f({}) = {} > f({}) = {}",
                lo.to_f64(), lut.apply(lo).to_f64(), hi.to_f64(), lut.apply(hi).to_f64()
            );
        }
    }

    /// tanh is odd, but the half-open bucket grid is not: `x` and `-x` can
    /// land in buckets whose midpoints sit one bucket width (2·4/512 = 1/64
    /// in the fine segment) apart. With tanh 1-Lipschitz plus one rounding
    /// LSB per entry, oddness holds to one bucket width + 1 LSB.
    #[test]
    fn tanh_lut_is_odd_up_to_one_bucket(bits in -32767i16..=32767) {
        let lut = ActivationLut::new(Activation::Tanh);
        let x = Q88::from_bits(bits);
        let fwd = lut.apply(x).to_f64();
        let mirrored = lut.apply(-x).to_f64();
        prop_assert!(
            (fwd + mirrored).abs() <= 1.0 / 64.0 + LSB + 1e-12,
            "tanh({}) = {fwd} vs tanh({}) = {mirrored}", x.to_f64(), (-x).to_f64()
        );
    }

    /// sigmoid(-x) = 1 - sigmoid(x); two independently rounded entries can
    /// disagree with the identity by at most two rounding LSBs.
    #[test]
    fn sigmoid_lut_respects_complement_symmetry(bits in -32767i16..=32767) {
        let lut = ActivationLut::new(Activation::Sigmoid);
        let x = Q88::from_bits(bits);
        let sum = lut.apply(x).to_f64() + lut.apply(-x).to_f64();
        prop_assert!(
            (sum - 1.0).abs() <= 2.0 * LSB + 1e-12,
            "sigmoid({}) + sigmoid({}) = {sum}", x.to_f64(), (-x).to_f64()
        );
    }

    /// Identity and ReLU bypass the table and are exact for every
    /// representable input.
    #[test]
    fn identity_and_relu_are_exact(x in any_q88()) {
        for act in [Activation::Identity, Activation::ReLU] {
            let lut = ActivationLut::new(act);
            prop_assert_eq!(lut.apply(x), Q88::from_f64(act.ideal(x.to_f64())));
        }
    }

    /// Every output honours the exhaustive error certificate `max_error`.
    /// The certificate measures distance to the *quantized* ideal, so the
    /// distance to the real line gains at most half a rounding LSB — the
    /// relation the golden model's envelope derivation consumes.
    #[test]
    fn apply_agrees_with_error_certificate(x in any_q88()) {
        for act in [
            Activation::Identity,
            Activation::ReLU,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            let lut = ActivationLut::new(act);
            let err = (lut.apply(x).to_f64() - act.ideal(x.to_f64())).abs();
            prop_assert!(
                err <= lut.max_error() + LSB / 2.0 + 1e-12,
                "{act:?}({}) errs {err} > certificate {}", x.to_f64(), lut.max_error()
            );
        }
    }
}
