//! Property-based tests of the address map: decode/encode are a bijection
//! over every valid geometry, so no two addresses alias and no vault's
//! data can leak into another vault's region.

use neurocube_dram::{AddressMap, DecodedAddr};
use proptest::prelude::*;

/// Random valid geometry, keeping the bank count alongside the map (the
/// map does not expose it). Channel capacity is a whole number of rows.
fn geometry() -> impl Strategy<Value = (AddressMap, u32)> {
    (1u32..32, 3u32..10, 1u32..17, 1u64..4096).prop_map(|(channels, row_pow, banks, rows)| {
        let row_bytes = 1u32 << row_pow;
        let channel_bytes = rows * u64::from(row_bytes);
        (
            AddressMap::new(channels, channel_bytes, banks, row_bytes),
            banks,
        )
    })
}

/// The inverse of [`AddressMap::decode`] under the partitioned mapping.
fn encode(map: &AddressMap, banks: u32, d: &DecodedAddr) -> u64 {
    let row_global = d.row * u64::from(banks) + u64::from(d.bank);
    map.channel_base(d.channel) + row_global * u64::from(map.row_bytes()) + u64::from(d.col)
}

proptest! {
    /// decode → encode round-trips every address: the map is injective
    /// (no two addresses share DRAM coordinates).
    #[test]
    fn decode_encode_roundtrip(
        g in geometry(),
        addr_frac in 0.0f64..1.0,
    ) {
        let (map, banks) = g;
        let addr = ((map.total_bytes() - 1) as f64 * addr_frac) as u64;
        let d = map.decode(addr);
        prop_assert!(d.channel < map.channels());
        prop_assert!(d.bank < banks);
        prop_assert!(u64::from(d.col) < u64::from(map.row_bytes()));
        prop_assert_eq!(encode(&map, banks, &d), addr);
    }

    /// `channel_of` agrees with the full decode, and channel regions are
    /// contiguous, disjoint and exhaustive: an address lies in channel `c`
    /// iff it falls inside `[channel_base(c), channel_base(c) + bytes)`.
    #[test]
    fn no_cross_vault_aliasing(
        g in geometry(),
        addr_frac in 0.0f64..1.0,
    ) {
        let (map, _banks) = g;
        let addr = ((map.total_bytes() - 1) as f64 * addr_frac) as u64;
        let d = map.decode(addr);
        prop_assert_eq!(map.channel_of(addr), d.channel);
        let base = map.channel_base(d.channel);
        prop_assert!(addr >= base);
        prop_assert!(addr < base + map.channel_bytes());
    }

    /// Within one channel, consecutive rows land on successive banks —
    /// the interleave that hides row activations behind open rows.
    #[test]
    fn consecutive_rows_interleave_across_banks(
        g in geometry(),
        row_frac in 0.0f64..1.0,
    ) {
        let (map, banks) = g;
        let rows = map.channel_bytes() / u64::from(map.row_bytes());
        if rows < 2 {
            return Ok(());
        }
        let r = ((rows - 2) as f64 * row_frac) as u64;
        let a = map.decode(r * u64::from(map.row_bytes()));
        let b = map.decode((r + 1) * u64::from(map.row_bytes()));
        prop_assert_eq!((a.bank + 1) % banks, b.bank);
        if banks > 1 {
            prop_assert_ne!(a.bank, b.bank);
        }
    }
}
