//! Sparse byte-addressable backing store.
//!
//! The simulator is value-accurate: weights and neuron states really live in
//! simulated DRAM. A multi-gigabyte cube is modeled sparsely with fixed-size
//! pages allocated on first touch.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u32 = 16; // 64 KiB pages
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Multiplicative hasher for page numbers. Every serviced DRAM word goes
/// through the page table, and page numbers are small dense integers —
/// SipHash (the `HashMap` default, sized for adversarial keys) would
/// dominate the channel's data path.
#[derive(Clone, Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// A sparse, byte-addressable memory image.
///
/// Reads of never-written locations return zero, matching a DRAM image that
/// the host cleared before loading the network (the paper's programming
/// model stores all layer data at known addresses before execution starts).
///
/// # Examples
///
/// ```
/// use neurocube_dram::Storage;
///
/// let mut mem = Storage::new();
/// mem.write_u16(0x1000, 0xBEEF);
/// assert_eq!(mem.read_u16(0x1000), 0xBEEF);
/// assert_eq!(mem.read_u16(0x2000), 0); // untouched
/// ```
#[derive(Clone, Debug, Default)]
pub struct Storage {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageHasher>>,
}

impl Storage {
    /// Creates an empty (all-zero) image.
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Number of 64 KiB pages actually materialized.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident simulated bytes (pages × page size).
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Whether the page holding `addr` has been materialized. Never-written
    /// pages read as zero without existing; callers that would *write*
    /// (e.g. fault injection flipping a stored bit) can use this to avoid
    /// materializing a 64 KiB page for a cell nothing will ever read.
    pub fn page_resident(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr >> PAGE_SHIFT))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte, materializing the page if needed.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `N` bytes through a single page lookup when they do not
    /// straddle a page boundary (the overwhelmingly common case — channel
    /// words are aligned and pages are 64 KiB).
    fn read_array<const N: usize>(&self, addr: u64) -> [u8; N] {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + N <= PAGE_SIZE {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(page) => page[off..off + N].try_into().expect("length matches"),
                None => [0; N],
            }
        } else {
            std::array::from_fn(|i| self.read_u8(addr + i as u64))
        }
    }

    /// Reads a little-endian `u16` (the size of one `Q1.7.8` item).
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_array(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32` (one HMC vault word = two data items).
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_array(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Bulk write starting at `addr`, one page lookup per touched page.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + bytes.len() <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + bytes.len()].copy_from_slice(bytes);
        } else {
            for (i, &b) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, b);
            }
        }
    }

    /// Bulk read of `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let mem = Storage::new();
        assert_eq!(mem.read_u32(0), 0);
        assert_eq!(mem.read_u8(u64::MAX - 4), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn u16_roundtrip_across_page_boundary() {
        let mut mem = Storage::new();
        let boundary = (1u64 << PAGE_SHIFT) - 1;
        mem.write_u16(boundary, 0xABCD);
        assert_eq!(mem.read_u16(boundary), 0xABCD);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn u32_little_endian_layout() {
        let mut mem = Storage::new();
        mem.write_u32(0x100, 0x1122_3344);
        assert_eq!(mem.read_u8(0x100), 0x44);
        assert_eq!(mem.read_u8(0x103), 0x11);
        // Two u16 halves are the two packed Q8.8 items of an HMC word.
        assert_eq!(mem.read_u16(0x100), 0x3344);
        assert_eq!(mem.read_u16(0x102), 0x1122);
    }

    #[test]
    fn bulk_roundtrip() {
        let mut mem = Storage::new();
        let data: Vec<u8> = (0..=255).collect();
        mem.write_bytes(0xFFFF0, &data); // spans pages
        assert_eq!(mem.read_bytes(0xFFFF0, 256), data);
    }

    #[test]
    fn sparse_pages_stay_sparse() {
        let mut mem = Storage::new();
        mem.write_u8(0, 1);
        mem.write_u8(1 << 30, 2); // 1 GiB away
        assert_eq!(mem.resident_pages(), 2);
        assert_eq!(mem.resident_bytes(), 2 * PAGE_SIZE);
    }

    #[test]
    fn overwrite_is_visible() {
        let mut mem = Storage::new();
        mem.write_u16(8, 1);
        mem.write_u16(8, 2);
        assert_eq!(mem.read_u16(8), 2);
    }
}
