//! The assembled memory subsystem: storage + channels + address map.
//!
//! The address space is divided into `regions` — one per vault/PE in the
//! Neurocube's logical mapping — served by `channels` physical memory
//! channels. For the HMC every region has its own channel (16/16); for the
//! DDR3 baseline of Fig. 15(a), 16 regions share 2 physical channels, and
//! the channel-count sweep keeps total capacity and per-channel bandwidth
//! fixed while varying how many regions contend per channel.

use crate::address::AddressMap;
use crate::channel::{Channel, ChannelConfig, Completion, Request};
use crate::storage::Storage;
use neurocube_fault::{DramFaultCounts, DramFaults, FaultConfig};
use neurocube_sim::{ScopedStats, StatSource};
use std::fmt;

/// Configuration of a whole memory subsystem.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryConfig {
    /// Technology name used in reports.
    pub name: &'static str,
    /// Physical channels (vaults for HMC, DIMM channels for DDR3).
    pub channels: u32,
    /// Logical regions (one per PE in the Neurocube mapping).
    pub regions: u32,
    /// Per-region capacity in bytes.
    pub region_bytes: u64,
    /// Per-channel timing parameters.
    pub channel: ChannelConfig,
}

impl MemoryConfig {
    /// The Neurocube's native memory: a 4 GB HMC, 16 vaults = 16 regions,
    /// HMC-internal timing.
    pub fn hmc_int() -> MemoryConfig {
        MemoryConfig {
            name: "HMC-Int",
            channels: 16,
            regions: 16,
            region_bytes: 256 << 20,
            channel: ChannelConfig::hmc_int(),
        }
    }

    /// An HMC-style memory with a reduced channel count at the same
    /// per-channel bandwidth (the Fig. 15(a) concurrency sweep): 16 regions
    /// shared over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or does not divide 16.
    pub fn hmc_with_channels(channels: u32) -> MemoryConfig {
        assert!(channels > 0 && 16 % channels == 0, "need a divisor of 16");
        MemoryConfig {
            name: "HMC-Int",
            channels,
            regions: 16,
            region_bytes: 256 << 20,
            channel: ChannelConfig::hmc_int(),
        }
    }

    /// A 2-channel DDR3 system of the same 4 GB capacity — the Fig. 15(a)
    /// baseline (higher per-channel bandwidth, far less concurrency).
    pub fn ddr3() -> MemoryConfig {
        MemoryConfig {
            name: "DDR3",
            channels: 2,
            regions: 16,
            region_bytes: 256 << 20,
            channel: ChannelConfig::ddr3(),
        }
    }

    /// The physical channel that serves `region`.
    pub fn channel_of_region(&self, region: u32) -> u32 {
        debug_assert!(region < self.regions);
        region * self.channels / self.regions
    }

    /// The address map induced by this configuration (one entry per
    /// region).
    pub fn address_map(&self) -> AddressMap {
        AddressMap::new(
            self.regions,
            self.region_bytes,
            self.channel.banks,
            self.channel.row_bytes,
        )
    }

    /// Aggregate average bandwidth in GB/s.
    pub fn aggregate_bandwidth_gbps(&self) -> f64 {
        self.channel.avg_bandwidth_gbps() * f64::from(self.channels)
    }
}

/// A complete memory subsystem: one [`Storage`] image shared by the
/// physical [`Channel`]s, with region→channel routing.
///
/// # Examples
///
/// ```
/// use neurocube_dram::{MemoryConfig, MemorySystem, Request, RequestKind};
///
/// let mut mem = MemorySystem::new(MemoryConfig::hmc_int());
/// mem.storage_mut().write_u32(0, 42);
/// mem.try_enqueue(0, Request { addr: 0, tag: 1, kind: RequestKind::Read });
/// let mut got = None;
/// for now in 0..1000 {
///     if let Some(c) = mem.tick_channel(0, now) { got = Some(c); break; }
/// }
/// assert_eq!(got.unwrap().data, 42);
/// ```
#[derive(Clone, Debug)]
pub struct MemorySystem {
    config: MemoryConfig,
    map: AddressMap,
    storage: Storage,
    channels: Vec<Channel>,
}

impl MemorySystem {
    /// Builds the subsystem described by `config`.
    pub fn new(config: MemoryConfig) -> MemorySystem {
        let map = config.address_map();
        let channels = (0..config.channels)
            .map(|_| Channel::new(config.channel))
            .collect();
        MemorySystem {
            config,
            map,
            storage: Storage::new(),
            channels,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// The address map (region bases, decode).
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Number of physical channels.
    pub fn channels(&self) -> u32 {
        self.config.channels
    }

    /// Number of logical regions.
    pub fn regions(&self) -> u32 {
        self.config.regions
    }

    /// Immutable access to the backing store (functional verification).
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Mutable access to the backing store — the host's "load the network
    /// into the cube" path, untimed exactly like the paper's programming
    /// phase.
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Outstanding requests in the channel serving `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn pending(&self, region: u32) -> usize {
        self.channels[self.config.channel_of_region(region) as usize].pending()
    }

    /// Free request-queue slots in the channel serving `region`.
    pub fn free_slots(&self, region: u32) -> usize {
        self.channels[self.config.channel_of_region(region) as usize].free_slots()
    }

    /// Submits a request for `region`, routed to its physical channel.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the address is not owned by `region` — the
    /// Neurocube compiler must never route a request to the wrong vault.
    pub fn try_enqueue(&mut self, region: u32, req: Request) -> bool {
        debug_assert_eq!(
            self.map.channel_of(req.addr),
            region,
            "request {:#x} routed to wrong region {region}",
            req.addr
        );
        let ch = self.config.channel_of_region(region) as usize;
        self.channels[ch].try_enqueue(req)
    }

    /// Ticks physical channel `ch` one reference cycle.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    pub fn tick_channel(&mut self, ch: u32, now: u64) -> Option<Completion> {
        self.channels[ch as usize].tick(now, &mut self.storage)
    }

    /// Read-only view of physical channel `ch` (statistics).
    pub fn channel(&self, ch: u32) -> &Channel {
        &self.channels[ch as usize]
    }

    /// Attaches a fault lens to every physical channel (or detaches them
    /// all with `None`). Each channel's background upsets land in the
    /// contiguous slice of the address space its regions occupy, and its
    /// lens draws from a per-channel PRNG domain so channels fault
    /// independently.
    pub fn set_faults(&mut self, cfg: Option<&FaultConfig>) {
        let per = self.config.regions / self.config.channels;
        for (i, ch) in self.channels.iter_mut().enumerate() {
            match cfg {
                Some(c) => {
                    let first = i as u32 * per;
                    let base = self.map.channel_base(first);
                    let span = self.config.region_bytes * u64::from(per);
                    ch.set_faults(Some(DramFaults::new(c, i as u16)), base, span);
                }
                None => ch.set_faults(None, 0, 0),
            }
        }
    }

    /// Aggregated DRAM fault counters across all channels (all zero when
    /// no lens is attached).
    pub fn fault_counts(&self) -> DramFaultCounts {
        let mut total = DramFaultCounts::default();
        for ch in &self.channels {
            if let Some(f) = ch.faults() {
                total.merge(&f.counts);
            }
        }
        total
    }

    /// The earliest future cycle at which any channel could do more than a
    /// null tick (see [`Channel::next_event`]); `None` if some channel
    /// must be ticked at `now`.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let mut horizon = u64::MAX;
        for ch in &self.channels {
            horizon = horizon.min(ch.next_event(now)?);
        }
        Some(horizon)
    }

    /// Bulk-charges every channel's null-tick accounting for `[from, to)`,
    /// a range [`next_event`](Self::next_event) declared quiescent.
    pub fn skip(&mut self, from: u64, to: u64) {
        for ch in &mut self.channels {
            ch.skip(from, to);
        }
    }

    /// Total bits transferred across all channels.
    pub fn total_bits_transferred(&self) -> u64 {
        self.channels.iter().map(Channel::bits_transferred).sum()
    }

    /// Total DRAM access energy in joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.channels.iter().map(Channel::energy_joules).sum()
    }

    /// Total row activations across all channels.
    pub fn total_row_misses(&self) -> u64 {
        self.channels.iter().map(Channel::row_misses).sum()
    }

    /// Read words whose (post-fault) payload was all zero, across all
    /// channels. Classification only — see DESIGN.md §13.
    pub fn total_zero_words_read(&self) -> u64 {
        self.channels.iter().map(Channel::zero_words_read).sum()
    }

    /// Written words whose payload was all zero, across all channels.
    pub fn total_zero_words_written(&self) -> u64 {
        self.channels.iter().map(Channel::zero_words_written).sum()
    }

    /// Maximal runs of consecutive zero read words, across all channels.
    pub fn total_zero_read_runs(&self) -> u64 {
        self.channels.iter().map(Channel::zero_read_runs).sum()
    }
}

impl StatSource for MemorySystem {
    fn report(&self, stats: &mut ScopedStats<'_>) {
        stats.counter("bits_transferred", self.total_bits_transferred());
        stats.counter("row_misses", self.total_row_misses());
        stats.metric("energy_j", self.total_energy_joules());
        stats.counter("zero_words_read", self.total_zero_words_read());
        stats.counter("zero_words_written", self.total_zero_words_written());
        stats.counter("zero_read_runs", self.total_zero_read_runs());
    }
}

impl fmt::Display for MemorySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} ch / {} regions, {}, {:.1} GB/s aggregate)",
            self.config.name,
            self.config.channels,
            self.config.regions,
            self.map,
            self.config.aggregate_bandwidth_gbps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::RequestKind;

    #[test]
    fn hmc_has_16_channels() {
        let mem = MemorySystem::new(MemoryConfig::hmc_int());
        assert_eq!(mem.channels(), 16);
        assert_eq!(mem.regions(), 16);
        // 16 GB/s sustained per vault (see ChannelConfig::hmc_int docs).
        assert!((mem.config().aggregate_bandwidth_gbps() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn ddr3_shares_2_channels_over_16_regions() {
        let mem = MemorySystem::new(MemoryConfig::ddr3());
        assert_eq!(mem.channels(), 2);
        assert_eq!(mem.regions(), 16);
        assert!((mem.config().aggregate_bandwidth_gbps() - 25.6).abs() < 1e-9);
        let cfg = mem.config();
        assert_eq!(cfg.channel_of_region(0), 0);
        assert_eq!(cfg.channel_of_region(7), 0);
        assert_eq!(cfg.channel_of_region(8), 1);
        assert_eq!(cfg.channel_of_region(15), 1);
    }

    #[test]
    fn channels_progress_independently() {
        let mut mem = MemorySystem::new(MemoryConfig::hmc_int());
        let base1 = mem.map().channel_base(1);
        mem.storage_mut().write_u32(0, 10);
        mem.storage_mut().write_u32(base1, 11);
        assert!(mem.try_enqueue(
            0,
            Request {
                addr: 0,
                tag: 0,
                kind: RequestKind::Read
            }
        ));
        assert!(mem.try_enqueue(
            1,
            Request {
                addr: base1,
                tag: 1,
                kind: RequestKind::Read
            }
        ));
        let mut got = [None, None];
        for now in 0..10_000 {
            for ch in 0..2 {
                if let Some(c) = mem.tick_channel(ch, now) {
                    got[ch as usize] = Some(c);
                }
            }
            if got.iter().all(Option::is_some) {
                break;
            }
        }
        let a = got[0].unwrap();
        let b = got[1].unwrap();
        assert_eq!(a.data, 10);
        assert_eq!(b.data, 11);
        // Same timing for identical access patterns in different vaults.
        assert_eq!(a.cycle, b.cycle);
    }

    #[test]
    fn shared_channel_serializes_regions() {
        let mut mem = MemorySystem::new(MemoryConfig::hmc_with_channels(2));
        let base1 = mem.map().channel_base(1);
        assert!(mem.try_enqueue(
            0,
            Request {
                addr: 0,
                tag: 0,
                kind: RequestKind::Read
            }
        ));
        // Region 1 shares channel 0 (regions 0..8 -> channel 0).
        assert!(mem.try_enqueue(
            1,
            Request {
                addr: base1,
                tag: 1,
                kind: RequestKind::Read
            }
        ));
        let mut cycles = Vec::new();
        for now in 0..10_000 {
            if let Some(c) = mem.tick_channel(0, now) {
                cycles.push(c.cycle);
            }
            if cycles.len() == 2 {
                break;
            }
        }
        assert_eq!(cycles.len(), 2);
        assert!(cycles[1] > cycles[0], "shared channel must serialize");
    }

    #[test]
    fn channel_sweep_preserves_total_capacity() {
        for n in [2, 4, 8, 16] {
            let cfg = MemoryConfig::hmc_with_channels(n);
            assert_eq!(cfg.address_map().total_bytes(), 4 << 30);
            assert_eq!(cfg.regions, 16);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "wrong region")]
    fn cross_region_enqueue_is_rejected() {
        let mut mem = MemorySystem::new(MemoryConfig::hmc_int());
        let base1 = mem.map().channel_base(1);
        let _ = mem.try_enqueue(
            0,
            Request {
                addr: base1,
                tag: 0,
                kind: RequestKind::Read,
            },
        );
    }

    #[test]
    fn energy_accumulates_across_channels() {
        let mut mem = MemorySystem::new(MemoryConfig::hmc_int());
        for ch in 0..16u32 {
            let addr = mem.map().channel_base(ch);
            assert!(mem.try_enqueue(
                ch,
                Request {
                    addr,
                    tag: 0,
                    kind: RequestKind::Write(1)
                }
            ));
        }
        for now in 0..1000 {
            for ch in 0..16 {
                let _ = mem.tick_channel(ch, now);
            }
        }
        assert_eq!(mem.total_bits_transferred(), 16 * 32);
        // One demand activation per write, plus up to two activate-ahead
        // rows per channel.
        assert!((16..=48).contains(&mem.total_row_misses()));
        assert!(mem.total_energy_joules() > 0.0);
    }
}
