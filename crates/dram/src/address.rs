//! Physical address decomposition: channel (vault), bank, row, column.
//!
//! Neurocube's host compiler places each data structure deliberately in a
//! specific vault (Fig. 10), so the address map is *partitioned*: the top
//! bits select the vault and each vault owns a contiguous region. Within a
//! vault, consecutive rows interleave across banks so that streaming reads
//! can hide row activation behind the open row of the next bank.

use std::fmt;

/// A physical address split into its DRAM coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    /// Channel (HMC vault) index.
    pub channel: u32,
    /// Bank within the channel.
    pub bank: u32,
    /// Row within the bank.
    pub row: u64,
    /// Byte offset within the row.
    pub col: u32,
}

/// Parameters of the address mapping.
///
/// # Examples
///
/// ```
/// use neurocube_dram::AddressMap;
///
/// let map = AddressMap::new(16, 256 << 20, 8, 256);
/// let d = map.decode(map.channel_base(3) + 1000);
/// assert_eq!(d.channel, 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddressMap {
    channels: u32,
    channel_bytes: u64,
    banks: u32,
    row_bytes: u32,
}

impl AddressMap {
    /// Creates a map with `channels` channels of `channel_bytes` each,
    /// `banks` banks per channel and `row_bytes` bytes per DRAM row.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `row_bytes` is not a power of two.
    pub fn new(channels: u32, channel_bytes: u64, banks: u32, row_bytes: u32) -> AddressMap {
        assert!(
            channels > 0 && banks > 0,
            "channels and banks must be nonzero"
        );
        assert!(
            row_bytes.is_power_of_two(),
            "row size must be a power of two"
        );
        assert!(channel_bytes > 0, "channel capacity must be nonzero");
        AddressMap {
            channels,
            channel_bytes,
            banks,
            row_bytes,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Capacity of one channel in bytes.
    pub fn channel_bytes(&self) -> u64 {
        self.channel_bytes
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.channel_bytes * u64::from(self.channels)
    }

    /// Bytes per DRAM row.
    pub fn row_bytes(&self) -> u32 {
        self.row_bytes
    }

    /// First byte address owned by `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_base(&self, channel: u32) -> u64 {
        assert!(channel < self.channels, "channel {channel} out of range");
        self.channel_bytes * u64::from(channel)
    }

    /// Decodes an address into channel, bank, row and column.
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds total capacity.
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        assert!(
            addr < self.total_bytes(),
            "address {addr:#x} beyond capacity {:#x}",
            self.total_bytes()
        );
        let channel = (addr / self.channel_bytes) as u32;
        let local = addr % self.channel_bytes;
        let row_global = local / u64::from(self.row_bytes);
        let col = (local % u64::from(self.row_bytes)) as u32;
        let bank = (row_global % u64::from(self.banks)) as u32;
        let row = row_global / u64::from(self.banks);
        DecodedAddr {
            channel,
            bank,
            row,
            col,
        }
    }

    /// The channel that owns `addr` (cheaper than a full [`decode`](Self::decode)).
    pub fn channel_of(&self, addr: u64) -> u32 {
        ((addr / self.channel_bytes) % u64::from(self.channels)) as u32
    }
}

impl fmt::Display for AddressMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ch x {} MiB ({} banks, {} B rows)",
            self.channels,
            self.channel_bytes >> 20,
            self.banks,
            self.row_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(16, 1 << 20, 8, 256)
    }

    #[test]
    fn channel_partitioning_is_contiguous() {
        let m = map();
        assert_eq!(m.decode(0).channel, 0);
        assert_eq!(m.decode((1 << 20) - 1).channel, 0);
        assert_eq!(m.decode(1 << 20).channel, 1);
        assert_eq!(m.channel_base(15), 15 << 20);
        assert_eq!(m.channel_of(15 << 20), 15);
    }

    #[test]
    fn rows_interleave_across_banks() {
        let m = map();
        // Consecutive 256-byte rows land in consecutive banks.
        for i in 0..16u64 {
            let d = m.decode(i * 256);
            assert_eq!(d.bank, (i % 8) as u32, "row {i}");
            assert_eq!(d.row, i / 8);
        }
    }

    #[test]
    fn column_is_row_offset() {
        let m = map();
        let d = m.decode(256 * 3 + 77);
        assert_eq!(d.col, 77);
    }

    #[test]
    fn total_bytes() {
        assert_eq!(map().total_bytes(), 16 << 20);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn decode_rejects_out_of_range() {
        let _ = map().decode(16 << 20);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn base_rejects_bad_channel() {
        let _ = map().channel_base(16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_rows() {
        let _ = AddressMap::new(2, 1024, 2, 100);
    }
}
