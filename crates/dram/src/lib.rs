//! Cycle-level memory models for the Neurocube simulator.
//!
//! The Neurocube sits on the logic die of a Micron Hybrid Memory Cube: 16
//! DRAM *vaults*, each with an independent vault controller, stream operands
//! into the compute layer (paper §II-B, §III-A). This crate provides:
//!
//! * [`MemorySpec`] — the technology comparison data of the paper's Table I
//!   (DDR3, Wide I/O 2, HBM, HMC external and HMC internal interfaces),
//! * [`Storage`] — a sparse byte-addressable backing store, so the simulator
//!   moves *real data*, not just timing tokens,
//! * [`AddressMap`] — vault / bank / row decomposition of physical addresses,
//! * [`Channel`] — the per-vault (or per-DDR3-channel) timing model: burst
//!   streaming at the I/O rate, inter-burst `t_CCD` gaps, row activation
//!   penalties (`t_CL + t_RCD`) and per-bit energy accounting,
//! * [`MemorySystem`] — the assembled memory subsystem used by the
//!   Neurocube core simulator, configurable as HMC-internal (16 channels),
//!   DDR3 (2 channels) or anything in between for the Fig. 15(a) sweep,
//! * [`zerorun`] — the lossless zero-run codec behind the sparsity report's
//!   elidable-transfer figures (DESIGN.md §13).
//!
//! All timing is expressed in *reference cycles* — ticks of the paper's
//! 5 GHz vault-I/O clock, which is also the PE and NoC clock. Slower
//! interfaces (DDR3) deliver words at a rational fraction of a word per
//! reference cycle, tracked exactly with an integer accumulator so bandwidth
//! ratios are preserved without floating-point drift.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod channel;
mod spec;
mod storage;
mod system;
pub mod zerorun;

pub use address::{AddressMap, DecodedAddr};
pub use channel::{Channel, ChannelConfig, Completion, RefreshModel, Request, RequestKind};
pub use spec::{Interface, MemorySpec, MEMORY_SPECS};
pub use storage::Storage;
pub use system::{MemoryConfig, MemorySystem};

/// The paper's reference clock: the HMC vault I/O clock, 2.5 GHz DDR = 5 GHz
/// effective (§VI). PE, NoC and DRAM I/O all tick at this rate in the
/// simulator; physical-time quantities are derived from it.
pub const REF_CLOCK_HZ: f64 = 5.0e9;

/// Converts nanoseconds to (rounded-up) reference cycles.
///
/// ```
/// use neurocube_dram::ns_to_cycles;
/// assert_eq!(ns_to_cycles(27.5), 138); // HMC tCL + tRCD
/// ```
pub fn ns_to_cycles(ns: f64) -> u64 {
    (ns * 1e-9 * REF_CLOCK_HZ).ceil() as u64
}
