//! The paper's Table I: 3D stacked memory technology comparison.

use std::fmt;

/// Physical interface style of a memory technology (Table I, row 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interface {
    /// Conventional planar DIMM interface.
    Planar2D,
    /// Interposer-based side-by-side stacking.
    Interposer2p5D,
    /// True die stacking with through-silicon vias.
    Stacked3D,
}

impl fmt::Display for Interface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Interface::Planar2D => "2D",
            Interface::Interposer2p5D => "2.5D",
            Interface::Stacked3D => "3D",
        };
        f.write_str(s)
    }
}

/// One row of the paper's Table I — the headline parameters of a candidate
/// memory technology.
///
/// # Examples
///
/// ```
/// use neurocube_dram::MemorySpec;
///
/// let hmc = MemorySpec::hmc_internal();
/// assert_eq!(hmc.max_channels, 16);
/// assert_eq!(hmc.aggregate_peak_bandwidth_gbps(), 160.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MemorySpec {
    /// Human-readable technology name.
    pub name: &'static str,
    /// Interface style.
    pub interface: Interface,
    /// Maximum number of independent channels (vaults for HMC).
    pub max_channels: u32,
    /// Channel word size in bits.
    pub word_bits: u32,
    /// Peak bandwidth per channel, GB/s.
    pub peak_bw_gbps: f64,
    /// Access latency `t_CL + t_RCD` in nanoseconds, if published.
    pub tcl_trcd_ns: Option<f64>,
    /// Operating voltage in volts.
    pub voltage_v: f64,
    /// Access energy in pJ per bit, if published.
    pub energy_pj_per_bit: Option<f64>,
}

impl MemorySpec {
    /// DDR3 SDRAM (JESD79-3F), the conventional baseline.
    pub const fn ddr3() -> MemorySpec {
        MemorySpec {
            name: "DDR3",
            interface: Interface::Planar2D,
            max_channels: 2,
            word_bits: 64,
            peak_bw_gbps: 12.8,
            tcl_trcd_ns: Some(25.0),
            voltage_v: 1.5,
            energy_pj_per_bit: Some(70.0),
        }
    }

    /// Wide I/O 2 (JESD229-2), mobile 3D stacking.
    pub const fn wide_io2() -> MemorySpec {
        MemorySpec {
            name: "Wide I/O 2",
            interface: Interface::Stacked3D,
            max_channels: 8,
            word_bits: 128,
            peak_bw_gbps: 6.4,
            tcl_trcd_ns: None,
            voltage_v: 1.1,
            energy_pj_per_bit: None,
        }
    }

    /// High Bandwidth Memory (JESD235).
    pub const fn hbm() -> MemorySpec {
        MemorySpec {
            name: "HBM",
            interface: Interface::Interposer2p5D,
            max_channels: 8,
            word_bits: 128,
            peak_bw_gbps: 16.0,
            tcl_trcd_ns: None,
            voltage_v: 1.2,
            energy_pj_per_bit: None,
        }
    }

    /// Hybrid Memory Cube, external host links.
    pub const fn hmc_external() -> MemorySpec {
        MemorySpec {
            name: "HMC-Ext",
            interface: Interface::Stacked3D,
            max_channels: 8,
            word_bits: 32,
            peak_bw_gbps: 40.0,
            tcl_trcd_ns: Some(27.5),
            voltage_v: 1.2,
            energy_pj_per_bit: Some(10.0),
        }
    }

    /// Hybrid Memory Cube, internal vault interface — what the Neurocube's
    /// logic die actually sees (one channel per vault).
    pub const fn hmc_internal() -> MemorySpec {
        MemorySpec {
            name: "HMC-Int",
            interface: Interface::Stacked3D,
            max_channels: 16,
            word_bits: 32,
            peak_bw_gbps: 10.0,
            tcl_trcd_ns: Some(27.5),
            voltage_v: 1.2,
            energy_pj_per_bit: Some(3.7),
        }
    }

    /// Peak bandwidth with every channel active, GB/s.
    pub fn aggregate_peak_bandwidth_gbps(&self) -> f64 {
        self.peak_bw_gbps * f64::from(self.max_channels)
    }

    /// Words per second per channel at peak bandwidth.
    pub fn peak_words_per_sec(&self) -> f64 {
        self.peak_bw_gbps * 1e9 / (f64::from(self.word_bits) / 8.0)
    }
}

/// All Table I rows, in the paper's column order.
pub const MEMORY_SPECS: [MemorySpec; 5] = [
    MemorySpec::ddr3(),
    MemorySpec::wide_io2(),
    MemorySpec::hbm(),
    MemorySpec::hmc_external(),
    MemorySpec::hmc_internal(),
];

impl fmt::Display for MemorySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<11} {:>5} {:>9} {:>9} {:>11} {:>11} {:>8} {:>11}",
            self.name,
            self.interface.to_string(),
            self.max_channels,
            format!("{} bit", self.word_bits),
            format!("{} GBps", self.peak_bw_gbps),
            self.tcl_trcd_ns
                .map_or("N/A".to_string(), |v| format!("{v} ns")),
            format!("{} V", self.voltage_v),
            self.energy_pj_per_bit
                .map_or("N/A".to_string(), |v| format!("{v} pJ/bit")),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_values() {
        let ddr3 = MemorySpec::ddr3();
        assert_eq!(ddr3.max_channels, 2);
        assert_eq!(ddr3.word_bits, 64);
        assert_eq!(ddr3.peak_bw_gbps, 12.8);
        assert_eq!(ddr3.energy_pj_per_bit, Some(70.0));

        let hmc = MemorySpec::hmc_internal();
        assert_eq!(hmc.max_channels, 16);
        assert_eq!(hmc.word_bits, 32);
        assert_eq!(hmc.peak_bw_gbps, 10.0);
        assert_eq!(hmc.tcl_trcd_ns, Some(27.5));
        assert_eq!(hmc.energy_pj_per_bit, Some(3.7));
    }

    #[test]
    fn hmc_aggregate_bandwidth_beats_ddr3() {
        // The core of the paper's Fig. 15(a) argument: per-channel DDR3 is
        // faster, aggregate HMC is over 6x faster.
        let hmc = MemorySpec::hmc_internal();
        let ddr3 = MemorySpec::ddr3();
        assert!(ddr3.peak_bw_gbps > hmc.peak_bw_gbps);
        assert!(hmc.aggregate_peak_bandwidth_gbps() > 6.0 * ddr3.aggregate_peak_bandwidth_gbps());
    }

    #[test]
    fn words_per_second() {
        // HMC-Int: 10 GB/s over 4-byte words = 2.5 G words/s.
        assert_eq!(MemorySpec::hmc_internal().peak_words_per_sec(), 2.5e9);
        // DDR3: 12.8 GB/s over 8-byte words = 1.6 G words/s.
        assert_eq!(MemorySpec::ddr3().peak_words_per_sec(), 1.6e9);
    }

    #[test]
    fn display_includes_key_fields() {
        let s = MemorySpec::hmc_internal().to_string();
        assert!(s.contains("HMC-Int"));
        assert!(s.contains("16"));
        assert!(s.contains("3.7 pJ/bit"));
        let s = MemorySpec::wide_io2().to_string();
        assert!(s.contains("N/A"));
    }

    #[test]
    fn all_specs_listed() {
        assert_eq!(MEMORY_SPECS.len(), 5);
        assert_eq!(MEMORY_SPECS[0].name, "DDR3");
        assert_eq!(MEMORY_SPECS[4].name, "HMC-Int");
    }
}
