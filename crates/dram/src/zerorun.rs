//! Zero-run compression for DRAM weight streams.
//!
//! Q1.7.8 weight images after ReLU-style pruning are dominated by runs of
//! zero words, and the MAC datapath treats a zero operand as the additive
//! identity (see DESIGN.md §13) — so a stream that *describes* its zero
//! runs instead of shipping them is bit-for-bit equivalent at the consumer
//! while moving far fewer words. This module provides the codec and the
//! transfer model a run-aware vault controller would implement:
//!
//! * [`encode`] / [`decode`] — an exact, lossless round-trip wire format,
//! * [`compressed_words`] / [`elidable_bits`] — how many channel words the
//!   encoded form occupies and how many bits of transfer it saves,
//!   the numbers the sparsity report attributes as *gated transfer energy*.
//!
//! The shipped timing model still transfers every word (classification
//! only, like the PE's gated-update accounting); the codec exists so the
//! savings figures rest on a format that demonstrably reconstructs the
//! stream, not on a hand wave.
//!
//! # Wire format
//!
//! A sequence of tokens, each one channel word:
//!
//! * `ZERO_RUN_TAG | n` — `n` consecutive zero words (`1 ≤ n ≤ 2^31`,
//!   stored as `n - 1` in the low 31 bits),
//! * any word with the top bit clear — itself, verbatim.
//!
//! Nonzero words whose own top bit is set cannot ride verbatim (they would
//! parse as tags), so the encoder prefixes them with `LITERAL_ESC` and
//! ships them raw in the following token. Both stock channel widths carry
//! 16-bit Q1.7.8 payloads packed two (HMC) or four (DDR3) to a word, so
//! escapes arise whenever the item in the high half is negative — common
//! enough that the escape path is first-class and tested.

/// Token tag: top bit set, next bit clear — a run of zero words.
const ZERO_RUN_TAG: u32 = 0x8000_0000;

/// Token tag: top two bits set — the next token is a verbatim word whose
/// own top bit is set.
const LITERAL_ESC: u32 = 0xC000_0000;

/// Longest zero run one token can describe.
const MAX_RUN: u64 = 1 << 30;

/// Encodes a word stream into its zero-run compressed form.
///
/// ```
/// use neurocube_dram::zerorun::{decode, encode};
/// let stream = [7, 0, 0, 0, 0xDEAD_BEEF, 0, 1];
/// let packed = encode(&stream);
/// assert!(packed.len() < stream.len() + 1);
/// assert_eq!(decode(&packed), stream);
/// ```
pub fn encode(words: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < words.len() {
        if words[i] == 0 {
            let mut run = 0u64;
            while i < words.len() && words[i] == 0 && run < MAX_RUN {
                run += 1;
                i += 1;
            }
            out.push(ZERO_RUN_TAG | (run - 1) as u32);
        } else if words[i] & ZERO_RUN_TAG != 0 {
            out.push(LITERAL_ESC);
            out.push(words[i]);
            i += 1;
        } else {
            out.push(words[i]);
            i += 1;
        }
    }
    out
}

/// Decodes a zero-run compressed stream back to the original words.
///
/// # Panics
///
/// Panics on a truncated escape sequence (an encoder never produces one).
pub fn decode(tokens: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = tokens[i];
        i += 1;
        if t & LITERAL_ESC == LITERAL_ESC {
            out.push(*tokens.get(i).expect("truncated literal escape"));
            i += 1;
        } else if t & ZERO_RUN_TAG != 0 {
            let run = u64::from(t & !ZERO_RUN_TAG) + 1;
            out.extend(std::iter::repeat_n(0u32, run as usize));
        } else {
            out.push(t);
        }
    }
    out
}

/// Channel words the encoded form of `words` occupies, without
/// materializing it.
pub fn compressed_words(words: &[u32]) -> u64 {
    let mut total = 0u64;
    let mut run = 0u64;
    for &w in words {
        if w == 0 {
            if run.is_multiple_of(MAX_RUN) {
                total += 1; // new run token
            }
            run += 1;
        } else {
            run = 0;
            total += if w & ZERO_RUN_TAG != 0 { 2 } else { 1 };
        }
    }
    total
}

/// Bits of channel transfer a run-aware controller would elide when
/// shipping `words` over a `word_bits`-wide channel: raw size minus
/// encoded size, floored at zero (incompressible streams cost extra
/// escape words; a real controller would ship those raw, so the savings
/// never go negative).
pub fn elidable_bits(words: &[u32], word_bits: u32) -> u64 {
    let raw = words.len() as u64;
    let packed = compressed_words(words);
    raw.saturating_sub(packed) * u64::from(word_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_exactly() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![0; 1000],
            vec![1, 2, 3],
            vec![0, 5, 0, 0, 6, 0, 0, 0],
            vec![0x8000_0001, 0, 0xFFFF_FFFF, 0xC000_0000],
            (0..257u32)
                .map(|i| if i % 3 == 0 { 0 } else { i << 20 })
                .collect(),
        ];
        for stream in cases {
            let packed = encode(&stream);
            assert_eq!(decode(&packed), stream, "stream {stream:?}");
            assert_eq!(packed.len() as u64, compressed_words(&stream));
        }
    }

    #[test]
    fn long_runs_split_at_token_capacity() {
        let n = MAX_RUN as usize + 17;
        let stream = vec![0u32; n];
        let packed = encode(&stream);
        assert_eq!(packed.len(), 2);
        assert_eq!(decode(&packed).len(), n);
    }

    #[test]
    fn escaped_literals_cost_two_words() {
        let stream = vec![0x9999_9999u32; 4];
        assert_eq!(compressed_words(&stream), 8);
        // Incompressible: savings floor at zero, never negative.
        assert_eq!(elidable_bits(&stream, 32), 0);
    }

    #[test]
    fn savings_grow_as_density_drops() {
        // 4096 words at decreasing nonzero density: elidable bits must be
        // monotone non-decreasing as the stream gets sparser.
        let mut prev = 0u64;
        for keep in [4usize, 8, 16, 64, 4096] {
            let stream: Vec<u32> = (0..4096u32)
                .map(|i| if (i as usize) % keep == 0 { i + 1 } else { 0 })
                .collect();
            let bits = elidable_bits(&stream, 32);
            assert!(bits >= prev, "keep={keep}: {bits} < {prev}");
            prev = bits;
        }
        assert!(prev > 0);
    }
}
