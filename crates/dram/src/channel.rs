//! Per-channel (per-vault) DRAM timing model.
//!
//! §VI of the paper fixes the streaming behaviour we reproduce: *"For all 16
//! vaults in the HMC, 32-bit word (2 data items) is pushed at 5 GHz in burst
//! mode and burst length is assumed as 8. Therefore, after pushing 8 words,
//! the HMC needs to wait `t_CCD` before sending the next 8 words."*
//!
//! The inter-burst gap is not given numerically, and the paper is in
//! tension with itself: its Table I lists 10 GB/s *average* per vault, but
//! its simulator description (words at 5 GHz = 20 GB/s raw) and its
//! reported throughput (132.4 of a 160 GOPs/s MAC peak) imply near-peak
//! streaming, which a 16-bank vault achieves by overlapping `t_CCD` across
//! banks. We use a 2-cycle inter-burst gap (16 GB/s sustained), the value
//! that reproduces the paper's utilization; the Table I average remains
//! available through [`MemorySpec`](crate::MemorySpec). Row activations
//! (`t_CL + t_RCD`) stall the channel when a request leaves the currently
//! open row of its bank.

use crate::storage::Storage;
use neurocube_fault::DramFaults;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// What a memory request does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// Read one channel word; its value is returned in the [`Completion`].
    Read,
    /// Write one channel word (little-endian low `word_bits` of the payload).
    Write(u64),
    /// Write a single 16-bit item (a masked write). Occupies a full word
    /// slot of channel time — the cost of an unpaired state write-back.
    Write16(u16),
}

/// A request submitted to a channel's vault controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Global byte address (must belong to this channel's region).
    pub addr: u64,
    /// Caller-defined correlation tag, returned in the [`Completion`].
    pub tag: u64,
    /// Read or write.
    pub kind: RequestKind,
}

/// A serviced request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The address of the original request.
    pub addr: u64,
    /// The tag of the original request.
    pub tag: u64,
    /// For reads, the word read from storage; for writes, the value written.
    pub data: u64,
    /// Cycle at which the word crossed the channel.
    pub cycle: u64,
}

/// Timing and energy parameters of one channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelConfig {
    /// Channel word size in bits (32 for HMC vaults, 64 for DDR3).
    pub word_bits: u32,
    /// Word service time numerator: a word takes `cpw_num / cpw_den`
    /// reference cycles within a burst.
    pub cpw_num: u32,
    /// Word service time denominator (see [`cpw_num`](Self::cpw_num)).
    pub cpw_den: u32,
    /// Words per burst.
    pub burst_len: u32,
    /// Idle reference cycles inserted after each burst (`t_CCD`).
    pub inter_burst_gap: u32,
    /// Row activation penalty in reference cycles (`t_CL + t_RCD`).
    pub row_miss_penalty: u32,
    /// Banks per channel (open-row tracking granularity).
    pub banks: u32,
    /// Scheduling window for FR-FCFS: the controller may serve the oldest
    /// row-buffer *hit* among the first `sched_window` queued requests
    /// instead of strictly the head, avoiding pathological row thrash when
    /// two streams alternate. `1` = strict FIFO.
    pub sched_window: u32,
    /// Bytes per DRAM row.
    pub row_bytes: u32,
    /// Request queue depth; [`Channel::try_enqueue`] fails beyond this.
    pub queue_capacity: usize,
    /// Access energy in pJ/bit (Table I), used for the power model.
    pub energy_pj_per_bit: f64,
    /// Periodic refresh, or `None` to ignore it (the paper's simulator
    /// does not mention refresh; enabling it costs a few percent of
    /// bandwidth and is provided for sensitivity studies).
    pub refresh: Option<RefreshModel>,
}

/// DRAM refresh timing: every `interval` reference cycles the whole
/// channel pauses for `duration` cycles (an all-bank refresh, the
/// conservative model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefreshModel {
    /// Cycles between refresh commands (`t_REFI`; 7.8 µs → 39,000 cycles
    /// at the 5 GHz reference clock).
    pub interval: u64,
    /// Cycles a refresh blocks the channel (`t_RFC`; ~350 ns → 1,750).
    pub duration: u64,
}

impl RefreshModel {
    /// JEDEC-typical refresh at the 5 GHz reference clock.
    pub fn jedec() -> RefreshModel {
        RefreshModel {
            interval: 39_000,
            duration: 1_750,
        }
    }

    /// The bandwidth fraction refresh steals.
    pub fn overhead(&self) -> f64 {
        self.duration as f64 / self.interval as f64
    }
}

impl ChannelConfig {
    /// The HMC internal vault interface at the 5 GHz reference clock:
    /// one 32-bit word per cycle, bursts of 8, 2-cycle `t_CCD` gap
    /// (16 GB/s sustained — see the module docs for the calibration
    /// rationale), 27.5 ns row penalty.
    pub fn hmc_int() -> ChannelConfig {
        ChannelConfig {
            word_bits: 32,
            cpw_num: 1,
            cpw_den: 1,
            burst_len: 8,
            inter_burst_gap: 2,
            row_miss_penalty: crate::ns_to_cycles(27.5) as u32,
            // 16 banks per vault (2 per DRAM die x 8 partitions' worth in
            // the 4-die stack).
            banks: 16,
            sched_window: 16,
            row_bytes: 256,
            queue_capacity: 64,
            energy_pj_per_bit: 3.7,
            refresh: None,
        }
    }

    /// A DDR3-1600 channel seen from the 5 GHz reference clock: one 64-bit
    /// word every 25/8 cycles (12.8 GB/s), 25 ns row penalty.
    pub fn ddr3() -> ChannelConfig {
        ChannelConfig {
            word_bits: 64,
            cpw_num: 25,
            cpw_den: 8,
            burst_len: 8,
            inter_burst_gap: 0,
            row_miss_penalty: crate::ns_to_cycles(25.0) as u32,
            banks: 8,
            sched_window: 16,
            row_bytes: 8192,
            queue_capacity: 64,
            energy_pj_per_bit: 70.0,
            refresh: None,
        }
    }

    /// Average bytes per reference cycle this configuration can sustain,
    /// ignoring row misses.
    pub fn avg_bytes_per_cycle(&self) -> f64 {
        let burst_cycles =
            f64::from(self.burst_len) * f64::from(self.cpw_num) / f64::from(self.cpw_den);
        let total = burst_cycles + f64::from(self.inter_burst_gap);
        f64::from(self.burst_len) * (f64::from(self.word_bits) / 8.0) / total
    }

    /// Average bandwidth in GB/s at the 5 GHz reference clock.
    pub fn avg_bandwidth_gbps(&self) -> f64 {
        self.avg_bytes_per_cycle() * crate::REF_CLOCK_HZ / 1e9
    }
}

/// Cycle-level model of one memory channel (HMC vault or DDR3 channel).
///
/// Drive it with [`tick`](Channel::tick) once per reference cycle; it serves
/// at most one *data* word per cycle, respecting the burst/gap duty cycle.
/// Row activations run **per bank, in parallel with data service** (bank-
/// level parallelism: the activation command occupies the command path, not
/// the data bus), and the controller *activates ahead* along sequential
/// address streams — rows interleave across banks, so while row `R`
/// streams, rows `R+1` and `R+2` open in their banks. A sequential stream
/// therefore pays `t_CL + t_RCD` once, not per row; random access patterns
/// still pay it per switch.
#[derive(Clone, Debug)]
pub struct Channel {
    cfg: ChannelConfig,
    queue: VecDeque<Request>,
    /// Per-request `(row_global, bank, row)` cached at enqueue, in lockstep
    /// with `queue` — the FR-FCFS window scans run every busy cycle and
    /// would otherwise redo two u64 divisions per scanned entry.
    qmeta: VecDeque<(u64, usize, u64)>,
    /// Absolute cycle at which the next word may cross the channel,
    /// in units of `1/cpw_den` cycles for exact rational pacing.
    ready_units: u64,
    words_in_burst: u32,
    open_rows: Vec<Option<u64>>,
    /// Cycle at which each bank's activation completes.
    bank_ready: Vec<u64>,
    /// Min-heap of in-flight activation completion times, so the earliest
    /// bank wake-up is an O(1) peek instead of a linear bank scan. Stale
    /// (past) entries are pruned lazily on busy ticks.
    ready_heap: BinaryHeap<Reverse<u64>>,
    /// End of the current refresh pause, if one is in progress.
    refresh_until: u64,
    refreshes: u64,
    /// Memoized null-tick horizon: ticks strictly before this cycle are
    /// known to be null (busy-cycle accounting only), so [`tick`] takes a
    /// constant-time shortcut instead of rescanning the window. Set when a
    /// tick turns out null, cleared by [`try_enqueue`]; purely an
    /// optimization — behaviour is bitwise identical with it disabled.
    quiet_until: u64,
    /// Known-ready prefix of the FR-FCFS window: the first `ready_prefix`
    /// queued requests are row-ready. Readiness is monotonic within the
    /// window — [`may_activate`](Self::may_activate)'s still-needed guard
    /// refuses to close a row a window entry waits on, and a bank past its
    /// activation time stays past it — so the prefix only resets when a
    /// refresh closes every row. While it is non-zero the data-path pick
    /// is index 0 with no scan, and the command path starts its
    /// candidate search past the prefix. Purely an optimization:
    /// behaviour is bitwise identical with it pinned to zero.
    ready_prefix: usize,
    /// `log2(row_bytes)` when the row size is a power of two (both stock
    /// configs are), so the per-request address split is a shift instead
    /// of a 64-bit division. `None` falls back to division.
    row_shift: Option<u32>,
    /// `log2(banks)` when the bank count is a power of two — bank/row of
    /// a global row number become mask/shift.
    bank_shift: Option<u32>,
    /// `log2(cpw_den)` when the pacing denominator is a power of two
    /// (both stock configs: 1 for HMC, 8 for DDR3), so the per-tick
    /// `ready_units.div_ceil(cpw_den)` becomes an add-and-shift instead
    /// of a 64-bit division — it runs on every streaming tick and every
    /// horizon probe of every channel.
    den_shift: Option<u32>,
    /// Fault-injection lens, when the run has one attached. Read faults
    /// ride the data path; the lens's background-upset schedule clamps
    /// [`next_event`](Channel::next_event) so the fast-forward loop can
    /// never skip over a scheduled fault.
    faults: Option<DramFaults>,
    /// Address region `[fault_base, fault_base + fault_span)` background
    /// upsets land in (the channel's slice of the address map).
    fault_base: u64,
    fault_span: u64,
    // statistics
    words_read: u64,
    words_written: u64,
    row_misses: u64,
    busy_cycles: u64,
    // sparsity classification (see DESIGN.md §13): how many channel words
    // carried an all-zero payload, and how those zero reads cluster into
    // runs. Classification only — zero words still occupy their full slot
    // of channel time and are charged full transfer energy; the counters
    // feed the gated-transfer savings model in `neurocube_power`.
    zero_words_read: u64,
    zero_words_written: u64,
    zero_read_runs: u64,
    prev_read_zero: bool,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new(cfg: ChannelConfig) -> Channel {
        Channel {
            queue: VecDeque::with_capacity(cfg.queue_capacity),
            qmeta: VecDeque::with_capacity(cfg.queue_capacity),
            ready_units: 0,
            words_in_burst: 0,
            open_rows: vec![None; cfg.banks as usize],
            bank_ready: vec![0; cfg.banks as usize],
            ready_heap: BinaryHeap::new(),
            refresh_until: 0,
            refreshes: 0,
            quiet_until: 0,
            ready_prefix: 0,
            row_shift: cfg
                .row_bytes
                .is_power_of_two()
                .then(|| cfg.row_bytes.trailing_zeros()),
            bank_shift: cfg
                .banks
                .is_power_of_two()
                .then(|| cfg.banks.trailing_zeros()),
            den_shift: cfg
                .cpw_den
                .is_power_of_two()
                .then(|| cfg.cpw_den.trailing_zeros()),
            faults: None,
            fault_base: 0,
            fault_span: 0,
            words_read: 0,
            words_written: 0,
            row_misses: 0,
            busy_cycles: 0,
            zero_words_read: 0,
            zero_words_written: 0,
            zero_read_runs: 0,
            prev_read_zero: false,
            cfg,
        }
    }

    /// The channel's configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Attaches (or detaches) a fault lens, with the address region
    /// `[base, base + span)` that this channel's background upsets land
    /// in. Clears the null-tick memo: it was proven without the lens's
    /// horizon clamp.
    pub fn set_faults(&mut self, faults: Option<DramFaults>, base: u64, span: u64) {
        self.faults = faults;
        self.fault_base = base;
        self.fault_span = span;
        self.quiet_until = 0;
    }

    /// The attached fault lens, if any (counter access for reporting).
    pub fn faults(&self) -> Option<&DramFaults> {
        self.faults.as_ref()
    }

    /// Remaining request-queue slots.
    pub fn free_slots(&self) -> usize {
        self.cfg.queue_capacity - self.queue.len()
    }

    /// Queued requests not yet serviced.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Submits a request. Returns `false` (and drops nothing — the caller
    /// keeps ownership semantics trivial because `Request: Copy`) when the
    /// queue is full; the caller should retry on a later cycle.
    pub fn try_enqueue(&mut self, req: Request) -> bool {
        if self.queue.len() >= self.cfg.queue_capacity {
            return false;
        }
        let row_global = match self.row_shift {
            Some(s) => req.addr >> s,
            None => req.addr / u64::from(self.cfg.row_bytes),
        };
        let (bank, row) = self.bank_row(row_global);
        self.qmeta.push_back((row_global, bank, row));
        self.queue.push_back(req);
        // A fresh request may be serviceable immediately.
        self.quiet_until = 0;
        true
    }

    /// `ready_units.div_ceil(cpw_den)` — the cycle at which the next word
    /// may cross — as a shift when the denominator is a power of two.
    #[inline]
    fn ready_cycle(&self) -> u64 {
        match self.den_shift {
            Some(s) => (self.ready_units + ((1u64 << s) - 1)) >> s,
            None => self.ready_units.div_ceil(u64::from(self.cfg.cpw_den)),
        }
    }

    /// Splits a global row number into `(bank, row-within-bank)` — a
    /// mask/shift when the bank count is a power of two, a division
    /// otherwise.
    #[inline]
    fn bank_row(&self, row_global: u64) -> (usize, u64) {
        match self.bank_shift {
            Some(s) => ((row_global & ((1u64 << s) - 1)) as usize, row_global >> s),
            None => (
                (row_global % u64::from(self.cfg.banks)) as usize,
                row_global / u64::from(self.cfg.banks),
            ),
        }
    }

    /// Starts an activation for global row `row_global` if its bank is free,
    /// not already holding (or opening) that row, and — crucially — not
    /// holding a row that another request in the scheduling window is still
    /// waiting to use (closing such a row would let two streams sharing a
    /// bank livelock by ping-ponging activations). Returns `true` if an
    /// activation was issued.
    fn try_activate(&mut self, row_global: u64, now: u64) -> bool {
        if !self.may_activate(row_global, now) {
            return false;
        }
        self.activate(row_global, now);
        true
    }

    /// Unconditionally opens `row_global`'s row (the mutation half of
    /// [`try_activate`](Self::try_activate); callers have already checked
    /// [`may_activate`](Self::may_activate) or its masked form).
    fn activate(&mut self, row_global: u64, now: u64) {
        let (bank, row) = self.bank_row(row_global);
        self.open_rows[bank] = Some(row);
        self.bank_ready[bank] = now + u64::from(self.cfg.row_miss_penalty);
        self.ready_heap
            .push(Reverse(now + u64::from(self.cfg.row_miss_penalty)));
        self.row_misses += 1;
    }

    /// Bit `b` set ⇔ bank `b`'s currently open row is still needed by a
    /// request in the scheduling window (closing it would livelock — see
    /// [`may_activate`](Self::may_activate)). One pass over the window, so
    /// the command paths check each activation candidate in O(1) instead
    /// of rescanning the window per candidate. `None` when the bank count
    /// exceeds the mask (never the stock 16/8-bank configs), in which case
    /// callers fall back to the per-candidate rescan.
    fn window_needed(&self, window: usize) -> Option<u64> {
        if self.cfg.banks > 64 {
            return None;
        }
        let mut needed = 0u64;
        for &(_, b, r) in self.qmeta.iter().take(window) {
            if self.open_rows[b] == Some(r) {
                needed |= 1u64 << b;
            }
        }
        Some(needed)
    }

    /// Side-effect-free half of [`try_activate`](Self::try_activate): would
    /// an activation for `row_global` be issued at `now`?
    fn may_activate(&self, row_global: u64, now: u64) -> bool {
        self.may_activate_with(row_global, now, None)
    }

    /// [`may_activate`](Self::may_activate) with the still-needed window
    /// scan optionally pre-computed by
    /// [`window_needed`](Self::window_needed).
    fn may_activate_with(&self, row_global: u64, now: u64, needed: Option<u64>) -> bool {
        let (bank, row) = self.bank_row(row_global);
        if self.open_rows[bank] == Some(row) || self.bank_ready[bank] > now {
            return false;
        }
        match needed {
            // A set bit implies the bank's row is open *and* needed; a
            // bank with no open row never has its bit set.
            Some(mask) => mask & (1u64 << bank) == 0,
            None => {
                if let Some(cur) = self.open_rows[bank] {
                    let window = (self.cfg.sched_window as usize)
                        .max(1)
                        .min(self.queue.len());
                    let still_needed = self
                        .qmeta
                        .iter()
                        .take(window)
                        .any(|&(_, b, r)| b == bank && r == cur);
                    if still_needed {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// The earliest in-flight activation completing strictly after `now`,
    /// or `u64::MAX` if none is pending. O(1) when the heap head is live;
    /// falls back to an unordered scan only when stale entries linger
    /// (e.g. activate-ahead rows no request ever touched again).
    fn next_bank_ready(&self, now: u64) -> u64 {
        match self.ready_heap.peek() {
            Some(&Reverse(t)) if t > now => t,
            Some(_) => self
                .ready_heap
                .iter()
                .map(|r| r.0)
                .filter(|&t| t > now)
                .min()
                .unwrap_or(u64::MAX),
            None => u64::MAX,
        }
    }

    /// The next refresh-trigger cycle strictly after `now`, or `u64::MAX`
    /// when refresh is disabled. Assumes a trigger is not due at `now`
    /// itself (the caller checks that first).
    fn next_refresh_trigger(&self) -> u64 {
        match self.cfg.refresh {
            Some(r) => ((self.refreshes + 1) * r.interval).max(self.refresh_until),
            None => u64::MAX,
        }
    }

    /// The earliest future cycle at which [`tick`](Channel::tick) could do
    /// anything other than a *null tick* (a tick whose only effect is the
    /// per-cycle busy accounting [`skip`](Channel::skip) reproduces).
    ///
    /// `None` means "tick me this cycle": the channel would issue a refresh
    /// or an activation, or serve a word, at `now`. `Some(u64::MAX)` means
    /// the channel is idle and only external enqueues can wake it.
    ///
    /// With a fault lens attached, **every** return path is additionally
    /// clamped to the lens's next scheduled background upset: a fault due
    /// inside a promised quiet window would otherwise be jumped over by
    /// the fast-forward loop and the skipping/naive runs would diverge.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        // The null-tick memo doubles as a horizon cache: a previous tick
        // proved (with fault clamping) that every cycle before
        // `quiet_until` is null, and `try_enqueue`/`set_faults` invalidate
        // the proof, so probing inside the window needs no rescan.
        if now < self.quiet_until {
            return Some(self.quiet_until);
        }
        let base = self.next_event_unfaulted(now);
        match &self.faults {
            Some(f) => f.clamp(now, base),
            None => base,
        }
    }

    /// [`next_event`](Channel::next_event) before fault clamping.
    fn next_event_unfaulted(&self, now: u64) -> Option<u64> {
        let mut horizon = u64::MAX;
        if let Some(r) = self.cfg.refresh {
            if now >= self.refresh_until && now / r.interval > self.refreshes {
                return None; // a refresh command fires this cycle
            }
            if now < self.refresh_until {
                // All-bank pause: every tick until then is a pure no-op.
                return Some(self.refresh_until);
            }
            horizon = horizon.min(self.next_refresh_trigger());
        }
        if self.queue.is_empty() {
            return Some(horizon);
        }
        let window = (self.cfg.sched_window as usize)
            .max(1)
            .min(self.queue.len());
        // Data path: would a word be served at `now`? A non-empty ready
        // prefix answers without scanning (readiness is monotonic, so the
        // prefix proven at the last tick still holds).
        if self.ready_prefix > 0 || (0..window).any(|i| self.row_ready_idx(i, now)) {
            let ready_cycle = self.ready_cycle();
            if now >= ready_cycle {
                return None;
            }
            horizon = horizon.min(ready_cycle);
        }
        // Command path: would a demand activation be issued at `now`?
        // Entries inside the ready prefix are row-ready by definition and
        // can be skipped. The needed mask is computed on the first real
        // candidate — an all-ready window (the streaming steady state)
        // never pays for it.
        let mut needed = None;
        for i in self.ready_prefix.min(window)..window {
            if self.row_ready_idx(i, now) {
                continue;
            }
            let mask = *needed.get_or_insert_with(|| self.window_needed(window));
            if self.may_activate_with(self.qmeta[i].0, now, mask) {
                return None;
            }
        }
        // Otherwise the channel can only change state when an in-flight
        // activation completes (making a request row-ready, or a blocked
        // bank free for a demand activation).
        Some(horizon.min(self.next_bank_ready(now)))
    }

    /// Bulk-charges the per-cycle accounting of the null ticks in
    /// `[from, to)`, a range this channel declared quiescent via
    /// [`next_event`](Channel::next_event): ticks inside a refresh pause
    /// touch nothing; ticks over a non-empty queue charge one busy cycle
    /// each, exactly as the naive loop would.
    pub fn skip(&mut self, from: u64, to: u64) {
        if from < self.refresh_until && self.cfg.refresh.is_some() {
            return;
        }
        if !self.queue.is_empty() {
            self.busy_cycles += to - from;
        }
    }

    /// Records that the tick at `now` turned out null: if (given the
    /// channel's *post-tick* state) nothing can happen before some future
    /// cycle, memoize that horizon so the ticks in between shortcut. When
    /// this tick did issue an activation that unblocks further command-path
    /// work next cycle, [`next_event`](Channel::next_event) returns `None`
    /// and no memo is set.
    fn note_quiet(&mut self, now: u64) {
        if let Some(h) = self.next_event(now) {
            self.quiet_until = h;
        }
    }

    /// Queued request `i`'s bank is open on its row and past its activation
    /// time (using the bank/row cached at enqueue).
    fn row_ready_idx(&self, i: usize, now: u64) -> bool {
        let (_, bank, row) = self.qmeta[i];
        self.open_rows[bank] == Some(row) && self.bank_ready[bank] <= now
    }

    /// Advances one reference cycle. Returns the completion if a word
    /// crossed the channel this cycle.
    pub fn tick(&mut self, now: u64, storage: &mut Storage) -> Option<Completion> {
        // Background upsets fire first: they are scheduled at absolute
        // cycles independent of channel activity (next_event clamps to
        // them, so this tick happens in both loop modes). An upset flips
        // one stored bit in the channel's region; upsets aimed at pages
        // the host never wrote hit cells no request will ever read, and
        // are counted without materializing the page.
        if let Some(f) = &mut self.faults {
            while f.upset_due(now) {
                let (sel, bit) = f.pop_upset();
                let words = (self.fault_span / 4).max(1);
                let addr = self.fault_base + (sel % words) * 4;
                if storage.page_resident(addr) {
                    let flipped = storage.read_u32(addr) ^ (1 << bit);
                    storage.write_u32(addr, flipped);
                    f.counts.upsets += 1;
                } else {
                    f.counts.upsets_absorbed += 1;
                }
            }
        }
        // Refresh: all-bank pause every t_REFI, closing every row.
        if let Some(r) = self.cfg.refresh {
            if now >= self.refresh_until && now / r.interval > self.refreshes {
                self.refreshes = now / r.interval;
                self.refresh_until = now + r.duration;
                self.open_rows.iter_mut().for_each(|b| *b = None);
                // Every row just closed: the ready-prefix proof is void.
                self.ready_prefix = 0;
            }
            if now < self.refresh_until {
                return None;
            }
        }
        if self.queue.is_empty() {
            return None;
        }
        self.busy_cycles += 1;
        if now < self.quiet_until {
            // A previous tick proved every cycle before `quiet_until` is a
            // null tick (and `try_enqueue` invalidates the proof), so only
            // the busy-cycle charge above remains.
            return None;
        }
        while self.ready_heap.peek().is_some_and(|&Reverse(t)| t <= now) {
            self.ready_heap.pop();
        }

        // Refresh the known-ready prefix: extend it over newly ready
        // leading entries. Each serve shrinks it by at most one, so the
        // extension work is amortized O(1) per served word.
        let window = (self.cfg.sched_window as usize)
            .max(1)
            .min(self.queue.len());
        self.ready_prefix = self.ready_prefix.min(window);
        while self.ready_prefix < window && self.row_ready_idx(self.ready_prefix, now) {
            self.ready_prefix += 1;
        }

        // Command path: issue (at most) one demand activation per cycle,
        // for the oldest request in the scheduling window whose row is not
        // open and whose bank permits it. Prefix entries are row-ready and
        // never candidates. The needed mask is computed on the first real
        // candidate and stays exact through the scan: nothing mutates
        // until a candidate passes, and then the loop ends.
        let mut needed = None;
        for i in self.ready_prefix..window {
            if self.row_ready_idx(i, now) {
                continue;
            }
            let mask = *needed.get_or_insert_with(|| self.window_needed(window));
            if self.may_activate_with(self.qmeta[i].0, now, mask) {
                self.activate(self.qmeta[i].0, now);
                break;
            }
        }

        // Data path (FR-FCFS): serve the oldest request whose row is open
        // and activated. A non-empty prefix means the queue head is it.
        let pick = if self.ready_prefix > 0 {
            0
        } else {
            match (0..window).find(|&i| self.row_ready_idx(i, now)) {
                Some(p) => p,
                None => {
                    self.note_quiet(now);
                    return None;
                }
            }
        };
        let req = self.queue[pick];

        // Rational rate pacing: next transfer at ceil(ready_units / cpw_den).
        let den = u64::from(self.cfg.cpw_den);
        let ready_cycle = self.ready_cycle();
        if now < ready_cycle {
            self.note_quiet(now);
            return None;
        }
        // If the channel has been idle past its scheduled slot (no work, or
        // a row stall), re-anchor pacing at `now`; within a paced stream
        // `now == ready_cycle` and the fractional remainder is preserved.
        if now > ready_cycle {
            self.ready_units = now * den;
        }

        // Serve the word.
        self.queue.remove(pick);
        let (row_global, ..) = self
            .qmeta
            .remove(pick)
            .expect("qmeta in lockstep with queue");
        if pick < self.ready_prefix {
            self.ready_prefix -= 1;
        }
        self.busy_cycles += 1;
        let bytes = u64::from(self.cfg.word_bits / 8);
        let data = match req.kind {
            RequestKind::Read => {
                self.words_read += 1;
                let raw = match self.cfg.word_bits {
                    32 => u64::from(storage.read_u32(req.addr)),
                    64 => {
                        u64::from(storage.read_u32(req.addr))
                            | (u64::from(storage.read_u32(req.addr + 4)) << 32)
                    }
                    16 => u64::from(storage.read_u16(req.addr)),
                    other => panic!("unsupported word size {other}"),
                };
                match &mut self.faults {
                    None => raw,
                    Some(f) => match self.cfg.word_bits {
                        64 => {
                            u64::from(f.filter_read(now, req.addr, raw as u32))
                                | (u64::from(f.filter_read(now, req.addr + 4, (raw >> 32) as u32))
                                    << 32)
                        }
                        bits => {
                            let mask = (1u64 << bits) - 1;
                            u64::from(f.filter_read(now, req.addr, raw as u32)) & mask
                        }
                    },
                }
            }
            RequestKind::Write(v) => {
                self.words_written += 1;
                storage.write_bytes(req.addr, &v.to_le_bytes()[..bytes as usize]);
                v
            }
            RequestKind::Write16(v) => {
                self.words_written += 1;
                storage.write_u16(req.addr, v);
                u64::from(v)
            }
        };

        // Sparsity classification on the value that actually crossed the
        // channel (post-fault for reads): a zero-run-aware compressor or a
        // transfer-gated link could elide these words. Timing and energy
        // above are untouched — see DESIGN.md §13.
        match req.kind {
            RequestKind::Read => {
                let zero = data == 0;
                if zero {
                    self.zero_words_read += 1;
                    if !self.prev_read_zero {
                        self.zero_read_runs += 1;
                    }
                }
                self.prev_read_zero = zero;
            }
            RequestKind::Write(_) | RequestKind::Write16(_) => {
                if data == 0 {
                    self.zero_words_written += 1;
                }
            }
        }

        // Schedule the next word: one word time, plus the burst gap when a
        // burst completes.
        self.ready_units += u64::from(self.cfg.cpw_num);
        self.words_in_burst += 1;
        if self.words_in_burst == self.cfg.burst_len {
            self.words_in_burst = 0;
            self.ready_units += u64::from(self.cfg.inter_burst_gap) * den;
        }

        // Activate-ahead for sequential streams: while row R streams, make
        // sure rows R+1 and R+2 are opening in their (interleaved) banks so
        // the stream never waits on tCL+tRCD in steady state.
        let _ = self.try_activate(row_global + 1, now);
        let _ = self.try_activate(row_global + 2, now);

        Some(Completion {
            addr: req.addr,
            tag: req.tag,
            data,
            cycle: now,
        })
    }

    /// Words read since construction.
    pub fn words_read(&self) -> u64 {
        self.words_read
    }

    /// Words written since construction.
    pub fn words_written(&self) -> u64 {
        self.words_written
    }

    /// Row-buffer misses (activations) since construction.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Cycles during which the channel was processing or stalled on work.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Refresh commands issued.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Read words whose (post-fault) payload was all zero.
    pub fn zero_words_read(&self) -> u64 {
        self.zero_words_read
    }

    /// Written words whose payload was all zero.
    pub fn zero_words_written(&self) -> u64 {
        self.zero_words_written
    }

    /// Maximal runs of consecutive zero read words on this channel — the
    /// unit a zero-run compressor (see [`crate::zerorun`]) would replace
    /// with a single run header.
    pub fn zero_read_runs(&self) -> u64 {
        self.zero_read_runs
    }

    /// Total bits moved across the channel.
    pub fn bits_transferred(&self) -> u64 {
        (self.words_read + self.words_written) * u64::from(self.cfg.word_bits)
    }

    /// DRAM access energy consumed so far, in joules (pJ/bit × bits).
    /// When the SECDED model is on, every decoded word moves 7 check bits
    /// alongside its 32 data bits and those bits are charged at the same
    /// pJ/bit (decode-logic energy is accounted separately — see
    /// `neurocube_power::secded_overhead_j`).
    pub fn energy_joules(&self) -> f64 {
        let mut bits = self.bits_transferred();
        if let Some(f) = &self.faults {
            if f.ecc_enabled() {
                bits += f.counts.ecc_words * u64::from(neurocube_fault::SECDED_CHECK_BITS);
            }
        }
        bits as f64 * self.cfg.energy_pj_per_bit * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_reads(cfg: ChannelConfig, n: usize) -> (u64, Vec<u64>) {
        let mut ch = Channel::new(cfg);
        let mut storage = Storage::new();
        for i in 0..n {
            // sequential words
            let addr = (i as u64) * u64::from(cfg.word_bits / 8);
            storage.write_u32(addr, i as u32);
            assert!(ch.try_enqueue(Request {
                addr,
                tag: i as u64,
                kind: RequestKind::Read,
            }));
        }
        let mut cycles = Vec::new();
        let mut now = 0u64;
        while cycles.len() < n {
            if let Some(c) = ch.tick(now, &mut storage) {
                cycles.push(c.cycle);
            }
            now += 1;
            assert!(now < 1_000_000, "channel deadlocked");
        }
        (now, cycles)
    }

    #[test]
    fn hmc_sustained_bandwidth_is_16gbps() {
        // 8 words x 4 B per 10 cycles at 5 GHz (see module docs on the
        // calibration against the paper's reported utilization).
        let cfg = ChannelConfig::hmc_int();
        assert!((cfg.avg_bandwidth_gbps() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn ddr3_config_matches_table1_bandwidth() {
        let cfg = ChannelConfig::ddr3();
        assert!((cfg.avg_bandwidth_gbps() - 12.8).abs() < 1e-9);
    }

    #[test]
    fn hmc_burst_pattern_8_on_2_off() {
        let mut cfg = ChannelConfig::hmc_int();
        cfg.row_miss_penalty = 0; // isolate burst pacing
        let (_, cycles) = run_reads(cfg, 24);
        // First burst back-to-back.
        assert_eq!(&cycles[0..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
        // Next burst starts after the 2-cycle t_CCD gap.
        assert_eq!(cycles[8], 10);
        assert_eq!(cycles[16], 20);
    }

    #[test]
    fn row_miss_stalls_then_streams() {
        let cfg = ChannelConfig::hmc_int();
        let (_, cycles) = run_reads(cfg, 8);
        let penalty = u64::from(cfg.row_miss_penalty);
        assert_eq!(cycles[0], penalty); // first access activates the row
        assert_eq!(cycles[7], penalty + 7);
    }

    #[test]
    fn sequential_stream_crosses_rows_with_interleaved_banks() {
        // 256-byte rows = 64 words; bank interleave means each new row costs
        // one activation, but only 8 activations total for 8 banks' worth.
        let mut cfg = ChannelConfig::hmc_int();
        cfg.queue_capacity = 1024;
        let mut ch = Channel::new(cfg);
        let mut storage = Storage::new();
        for i in 0..512u64 {
            assert!(ch.try_enqueue(Request {
                addr: i * 4,
                tag: i,
                kind: RequestKind::Read
            }));
        }
        let mut now = 0;
        let mut done = 0;
        while done < 512 {
            if ch.tick(now, &mut storage).is_some() {
                done += 1;
            }
            now += 1;
            assert!(now < 1_000_000);
        }
        // 512 words x 4B = 2 KiB = 8 rows; with activate-ahead the
        // controller also opens up to two rows past the stream's end.
        assert!((8..=10).contains(&ch.row_misses()), "{}", ch.row_misses());
    }

    #[test]
    fn ddr3_rate_is_8_words_per_25_cycles() {
        let mut cfg = ChannelConfig::ddr3();
        cfg.row_miss_penalty = 0;
        let (_, cycles) = run_reads(cfg, 16);
        // Ideal times: k * 25/8 -> ceil: 0,4,7,10,13,16,19,22,25,...
        assert_eq!(cycles[0], 0);
        assert_eq!(cycles[8], 25);
        // Average rate preserved exactly over the window.
        assert_eq!(cycles[15], (15u64 * 25).div_ceil(8));
    }

    #[test]
    fn reads_return_stored_data() {
        let cfg = ChannelConfig::hmc_int();
        let mut ch = Channel::new(cfg);
        let mut storage = Storage::new();
        storage.write_u32(0x40, 0xDEAD_BEEF);
        ch.try_enqueue(Request {
            addr: 0x40,
            tag: 7,
            kind: RequestKind::Read,
        });
        let mut now = 0;
        loop {
            if let Some(c) = ch.tick(now, &mut storage) {
                assert_eq!(c.data, 0xDEAD_BEEF);
                assert_eq!(c.tag, 7);
                break;
            }
            now += 1;
        }
    }

    #[test]
    fn writes_land_in_storage_and_count_energy() {
        let cfg = ChannelConfig::hmc_int();
        let mut ch = Channel::new(cfg);
        let mut storage = Storage::new();
        ch.try_enqueue(Request {
            addr: 0x10,
            tag: 0,
            kind: RequestKind::Write(0x1234_5678),
        });
        let mut now = 0;
        while ch.tick(now, &mut storage).is_none() {
            now += 1;
        }
        assert_eq!(storage.read_u32(0x10), 0x1234_5678);
        assert_eq!(ch.words_written(), 1);
        assert_eq!(ch.bits_transferred(), 32);
        assert!((ch.energy_joules() - 32.0 * 3.7e-12).abs() < 1e-18);
    }

    #[test]
    fn zero_words_classify_without_touching_timing_or_energy() {
        // Pattern: Z Z N Z N N Z Z Z — 3 zero runs, 6 zero reads.
        let values: [u32; 9] = [0, 0, 7, 0, 9, 9, 0, 0, 0];
        let run = |vals: &[u32]| {
            let mut ch = Channel::new(ChannelConfig::hmc_int());
            let mut storage = Storage::new();
            for (i, &v) in vals.iter().enumerate() {
                let addr = i as u64 * 4;
                storage.write_u32(addr, v);
                assert!(ch.try_enqueue(Request {
                    addr,
                    tag: i as u64,
                    kind: RequestKind::Read,
                }));
            }
            let mut cycles = Vec::new();
            let mut now = 0u64;
            while cycles.len() < vals.len() {
                if let Some(c) = ch.tick(now, &mut storage) {
                    cycles.push(c.cycle);
                }
                now += 1;
                assert!(now < 1_000_000);
            }
            (ch, cycles)
        };
        let (ch, cycles) = run(&values);
        assert_eq!(ch.zero_words_read(), 6);
        assert_eq!(ch.zero_read_runs(), 3);
        assert_eq!(ch.zero_words_written(), 0);
        // Classification only: a dense stream of the same length has
        // identical timing and energy.
        let (dense, dense_cycles) = run(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(cycles, dense_cycles);
        assert_eq!(
            ch.energy_joules().to_bits(),
            dense.energy_joules().to_bits()
        );
        assert_eq!(dense.zero_words_read(), 0);
        assert_eq!(dense.zero_read_runs(), 0);
    }

    #[test]
    fn zero_writes_classify_for_both_write_kinds() {
        let mut ch = Channel::new(ChannelConfig::hmc_int());
        let mut storage = Storage::new();
        for (i, kind) in [
            RequestKind::Write(0),
            RequestKind::Write(3),
            RequestKind::Write16(0),
            RequestKind::Write16(5),
        ]
        .into_iter()
        .enumerate()
        {
            assert!(ch.try_enqueue(Request {
                addr: i as u64 * 4,
                tag: i as u64,
                kind,
            }));
        }
        let mut done = 0;
        let mut now = 0u64;
        while done < 4 {
            done += usize::from(ch.tick(now, &mut storage).is_some());
            now += 1;
            assert!(now < 1_000_000);
        }
        assert_eq!(ch.zero_words_written(), 2);
        assert_eq!(ch.zero_words_read(), 0);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let mut cfg = ChannelConfig::hmc_int();
        cfg.queue_capacity = 2;
        let mut ch = Channel::new(cfg);
        let req = Request {
            addr: 0,
            tag: 0,
            kind: RequestKind::Read,
        };
        assert!(ch.try_enqueue(req));
        assert!(ch.try_enqueue(req));
        assert!(!ch.try_enqueue(req));
        assert_eq!(ch.free_slots(), 0);
    }

    #[test]
    fn refresh_steals_the_expected_bandwidth() {
        let mut cfg = ChannelConfig::hmc_int();
        cfg.queue_capacity = 4096;
        let mut with = cfg;
        with.refresh = Some(RefreshModel::jedec());
        assert!((RefreshModel::jedec().overhead() - 0.0449).abs() < 0.01);
        let mut results = Vec::new();
        for c in [cfg, with] {
            let mut ch = Channel::new(c);
            let mut storage = Storage::new();
            let n = 40_000u64; // spans a full refresh interval
            let mut issued = 0u64;
            let mut done = 0u64;
            let mut now = 0u64;
            let mut last = 0u64;
            while done < n {
                while issued < n
                    && ch.try_enqueue(Request {
                        addr: issued * 4,
                        tag: issued,
                        kind: RequestKind::Read,
                    })
                {
                    issued += 1;
                }
                if let Some(r) = ch.tick(now, &mut storage) {
                    done += 1;
                    last = r.cycle;
                }
                now += 1;
                assert!(now < 10_000_000);
            }
            results.push(last);
        }
        let slowdown = results[1] as f64 / results[0] as f64;
        assert!(
            (1.02..1.10).contains(&slowdown),
            "refresh slowdown {slowdown}"
        );
    }

    /// Drives a channel to completion twice — once ticking every cycle,
    /// once honoring the `next_event`/`skip` fast-forward protocol — and
    /// asserts the two runs are bitwise identical in completions and in
    /// every counter the channel reports.
    fn assert_skip_equivalent(cfg: ChannelConfig, addrs: &[u64]) {
        let mut seed = Channel::new(cfg);
        for (i, &addr) in addrs.iter().enumerate() {
            assert!(seed.try_enqueue(Request {
                addr,
                tag: i as u64,
                kind: RequestKind::Read,
            }));
        }
        let run = |mut ch: Channel, fast: bool| {
            let mut storage = Storage::new();
            let mut completions = Vec::new();
            let mut now = 0u64;
            while completions.len() < addrs.len() {
                if fast {
                    if let Some(t) = ch.next_event(now) {
                        assert!(t > now, "horizon must be in the future");
                        assert_ne!(t, u64::MAX, "channel with work cannot sleep forever");
                        ch.skip(now, t);
                        now = t;
                        continue;
                    }
                }
                if let Some(c) = ch.tick(now, &mut storage) {
                    completions.push(c);
                }
                now += 1;
                assert!(now < 10_000_000, "channel deadlocked");
            }
            (
                completions,
                ch.busy_cycles(),
                ch.words_read(),
                ch.row_misses(),
                ch.refreshes(),
            )
        };
        let naive = run(seed.clone(), false);
        let fast = run(seed, true);
        assert_eq!(naive, fast);
    }

    #[test]
    fn next_event_skip_is_bitwise_identical_to_naive_ticking() {
        // A bank-thrashing pattern (same bank, alternating rows) maximizes
        // row-activation waits — the regime fast-forward exists for.
        let thrash: Vec<u64> = (0..32u64)
            .map(|i| (i % 2) * 16 * 256 + (i / 2) * 4)
            .collect();
        assert_skip_equivalent(ChannelConfig::hmc_int(), &thrash);
        // A sequential stream exercises burst gaps and activate-ahead.
        let seq: Vec<u64> = (0..64u64).map(|i| i * 4).collect();
        assert_skip_equivalent(ChannelConfig::hmc_int(), &seq);
        // DDR3's rational pacing (25/8 cycles per word).
        assert_skip_equivalent(ChannelConfig::ddr3(), &seq);
        // Refresh pauses and triggers crossed by jumps. The interval must
        // comfortably exceed the row-activation penalty or the all-bank
        // refresh forever closes rows before they finish opening.
        let mut refreshing = ChannelConfig::hmc_int();
        refreshing.refresh = Some(RefreshModel {
            interval: 500,
            duration: 60,
        });
        assert_skip_equivalent(refreshing, &thrash);
    }

    #[test]
    fn fault_mode_skip_is_bitwise_identical_and_horizons_clamp_to_upsets() {
        use neurocube_fault::{DramFaults, FaultConfig};
        let mut fcfg = FaultConfig::uniform(0x5EED, 1e-4);
        fcfg.dram_upset_rate = 1e-2; // several scheduled upsets per run
        fcfg.ecc = true;
        let cfg = ChannelConfig::hmc_int();
        let mut seed = Channel::new(cfg);
        seed.set_faults(Some(DramFaults::new(&fcfg, 0)), 0, 1 << 16);
        // A thrashing pattern with long activation waits: quiet windows
        // that scheduled upsets must cut short.
        let addrs: Vec<u64> = (0..32u64)
            .map(|i| (i % 2) * 16 * 256 + (i / 2) * 4)
            .collect();
        for (i, &addr) in addrs.iter().enumerate() {
            assert!(seed.try_enqueue(Request {
                addr,
                tag: i as u64,
                kind: RequestKind::Read,
            }));
        }
        let run = |mut ch: Channel, fast: bool| {
            let mut storage = Storage::new();
            // Materialize the upset window so background flips land on
            // resident pages and are observable through later reads.
            for a in (0u64..(1 << 16)).step_by(4) {
                storage.write_u32(a, (a as u32).wrapping_mul(0x9E37_79B9));
            }
            let mut completions = Vec::new();
            let mut now = 0u64;
            while completions.len() < addrs.len() {
                if fast {
                    if let Some(t) = ch.next_event(now) {
                        assert!(t > now, "horizon must be in the future");
                        assert!(
                            t <= ch.faults().unwrap().next_upset(),
                            "a quiet window may never cross a scheduled upset"
                        );
                        ch.skip(now, t);
                        now = t;
                        continue;
                    }
                }
                if let Some(c) = ch.tick(now, &mut storage) {
                    completions.push(c);
                }
                now += 1;
                assert!(now < 10_000_000, "channel deadlocked");
            }
            let counts = ch.faults().unwrap().counts;
            (completions, ch.busy_cycles(), ch.row_misses(), counts)
        };
        let naive = run(seed.clone(), false);
        let fast = run(seed, true);
        assert_eq!(naive, fast, "fault-mode skip diverged from naive");
        assert!(
            naive.3.upsets > 0,
            "the schedule must actually fire inside the run"
        );
        assert_eq!(naive.3.ecc_words, 32, "every read word is ECC-decoded");
    }

    #[test]
    fn zero_rate_lens_leaves_the_channel_bitwise_unchanged() {
        use neurocube_fault::{DramFaults, FaultConfig};
        let addrs: Vec<u64> = (0..48u64).map(|i| i * 4).collect();
        let build = |lens: bool| {
            let mut ch = Channel::new(ChannelConfig::hmc_int());
            if lens {
                let fcfg = FaultConfig::uniform(7, 0.0);
                ch.set_faults(Some(DramFaults::new(&fcfg, 0)), 0, 1 << 16);
            }
            for (i, &addr) in addrs.iter().enumerate() {
                assert!(ch.try_enqueue(Request {
                    addr,
                    tag: i as u64,
                    kind: RequestKind::Read,
                }));
            }
            let mut storage = Storage::new();
            for (i, &addr) in addrs.iter().enumerate() {
                storage.write_u32(addr, i as u32 * 3);
            }
            let mut completions = Vec::new();
            let mut now = 0u64;
            while completions.len() < addrs.len() {
                if let Some(c) = ch.tick(now, &mut storage) {
                    completions.push(c);
                }
                now += 1;
                assert!(now < 1_000_000);
            }
            (completions, ch.busy_cycles(), ch.energy_joules().to_bits())
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn next_event_horizon_promises_only_null_ticks() {
        // At every cycle of a run, a reported horizon must mean the naive
        // tick is a null tick (no completion, busy-only accounting) for
        // the whole skipped range.
        let cfg = ChannelConfig::hmc_int();
        let mut ch = Channel::new(cfg);
        let mut storage = Storage::new();
        for i in 0..24u64 {
            ch.try_enqueue(Request {
                addr: i * 997 * 4, // scattered: plenty of row misses
                tag: i,
                kind: RequestKind::Read,
            });
        }
        let mut done = 0;
        let mut now = 0u64;
        while done < 24 {
            let horizon = ch.next_event(now);
            let busy_before = ch.busy_cycles();
            let misses_before = ch.row_misses();
            let served = ch.tick(now, &mut storage);
            if let Some(t) = horizon {
                assert!(t > now);
                assert!(served.is_none(), "promised null tick served at {now}");
                assert_eq!(ch.row_misses(), misses_before);
                assert!(ch.busy_cycles() <= busy_before + 1);
            }
            done += u64::from(served.is_some());
            now += 1;
            assert!(now < 1_000_000);
        }
    }

    #[test]
    fn idle_channel_reanchors_pacing() {
        let mut cfg = ChannelConfig::hmc_int();
        cfg.row_miss_penalty = 0;
        let mut ch = Channel::new(cfg);
        let mut storage = Storage::new();
        let req = Request {
            addr: 0,
            tag: 0,
            kind: RequestKind::Read,
        };
        ch.try_enqueue(req);
        assert!(ch.tick(0, &mut storage).is_some());
        // Long idle period, then a new request must be served immediately,
        // not delayed by phantom accumulated burst position.
        ch.try_enqueue(req);
        assert!(ch.tick(1000, &mut storage).is_some());
    }
}
