//! Deterministic, seed-replayable fault injection for the Neurocube simulator.
//!
//! The paper pitches Neurocube as a *digital, deterministic* near-memory
//! accelerator; this crate asks what happens when the substrate underneath
//! that determinism misbehaves. It models three fault domains:
//!
//! * **DRAM** — transient bit-flips on read, stuck-at cells, and
//!   background upsets scheduled at absolute cycles (the only fault class
//!   that exists independently of activity, and therefore the only one
//!   that must *invalidate event horizons* — see [`DramFaults::clamp`]).
//!   An optional SECDED(39,32) ECC model corrects single-bit read errors
//!   at an energy cost accounted in `crates/power`.
//! * **NoC** — per-link-hop flit corruption (caught by a parity check and
//!   retransmitted with a one-cycle penalty), flit drops (recovered by an
//!   ack-timeout retransmit), and misroutes (the flit takes a wrong turn;
//!   per-hop X-Y routing self-heals from the new position). No packet is
//!   ever lost — loss would deadlock the PNG's write-back accounting —
//!   so faults cost latency and energy, never completion.
//! * **PE** — transient MAC faults: one operand bit flips at fire time.
//!
//! Every fault decision comes from [`draw`], a pure `ChaCha`-style counter
//! PRNG keyed by `(seed, domain, cycle, salt)`. There is no mutable RNG
//! stream to keep in sync: a component asks "does a fault happen *here,
//! now*?" and the answer is a pure function of the key. Because
//! fault-bearing events (reads, flit hops, MAC fires) occur at identical
//! absolute cycles in the skipping and naive simulation loops, injection
//! is bitwise reproducible across both — the skip-equivalence suites
//! assert exactly that.

#![forbid(unsafe_code)]

mod config;
mod lens;
mod prng;
mod schedule;

pub use config::FaultConfig;
pub use lens::{
    DramFaultCounts, DramFaults, LinkFault, NocFaultCounts, NocFaults, PeFaultCounts, PeFaults,
};
pub use prng::{draw, unit, Bernoulli};
pub use schedule::FaultSchedule;

/// SECDED(39,32): check bits stored and moved per protected 32-bit word.
pub const SECDED_CHECK_BITS: u32 = 7;

/// Domain codes separating the per-component PRNG streams. Two components
/// drawing at the same cycle with the same salt must still see independent
/// values, so each keys its draws with a distinct domain.
pub mod domain {
    /// Transient bit-flips on reads served by DRAM channel `ch`.
    pub fn dram_read(ch: u16) -> u64 {
        0x0100_0000_0000_0000 | u64::from(ch)
    }

    /// Static stuck-at cell map of DRAM channel `ch` (keyed by address,
    /// not cycle — the defect is permanent).
    pub fn dram_stuck(ch: u16) -> u64 {
        0x0200_0000_0000_0000 | u64::from(ch)
    }

    /// Background upset schedule of DRAM channel `ch` (keyed by event
    /// index, not cycle — arrivals are a geometric renewal process).
    pub fn dram_upset(ch: u16) -> u64 {
        0x0300_0000_0000_0000 | u64::from(ch)
    }

    /// Per-link-hop NoC fault events.
    pub const NOC_LINK: u64 = 0x0400_0000_0000_0000;

    /// Transient MAC faults in PE `pe`.
    pub fn pe_mac(pe: u16) -> u64 {
        0x0500_0000_0000_0000 | u64::from(pe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_a_pure_function_of_the_key() {
        let a = draw(1, 2, 3, 4);
        let b = draw(1, 2, 3, 4);
        assert_eq!(a, b);
        assert_ne!(a, draw(1, 2, 3, 5));
        assert_ne!(a, draw(1, 2, 4, 4));
        assert_ne!(a, draw(1, 3, 3, 4));
        assert_ne!(a, draw(2, 2, 3, 4));
    }

    #[test]
    fn domains_do_not_collide() {
        let mut codes = vec![domain::NOC_LINK];
        for ch in 0..16 {
            codes.push(domain::dram_read(ch));
            codes.push(domain::dram_stuck(ch));
            codes.push(domain::dram_upset(ch));
            codes.push(domain::pe_mac(ch));
        }
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n);
    }

    #[test]
    fn unit_maps_into_the_half_open_interval() {
        for x in [0u64, 1, u64::MAX, u64::MAX / 2, 0x8000_0000_0000_0000] {
            let u = unit(x);
            assert!((0.0..1.0).contains(&u), "unit({x}) = {u}");
        }
    }

    #[test]
    fn bernoulli_edge_rates() {
        let never = Bernoulli::new(0.0);
        let always = Bernoulli::new(1.0);
        for x in [0u64, 1, u64::MAX / 3, u64::MAX] {
            assert!(!never.hit(x));
            assert!(always.hit(x));
        }
        assert!(never.is_never());
        assert!(!always.is_never());
    }

    #[test]
    fn bernoulli_rate_matches_empirical_frequency() {
        let b = Bernoulli::new(0.125);
        let hits = (0..100_000u64).filter(|&i| b.hit(draw(7, 7, i, 0))).count() as f64;
        let freq = hits / 100_000.0;
        assert!(
            (freq - 0.125).abs() < 0.01,
            "empirical frequency {freq} far from 0.125"
        );
    }
}
