//! Absolute-cycle fault schedules.
//!
//! Activity-independent faults (DRAM background upsets) cannot be keyed
//! by "the cycle something happened" — nothing happens; the fault *is*
//! the event. They are instead scheduled as a geometric renewal process:
//! event `k`'s gap is drawn from the geometric distribution matching the
//! per-cycle rate, keyed by the event *index*, so the whole arrival
//! sequence is a pure function of `(seed, domain, rate)` and identical in
//! skipping and naive runs. A component holding a schedule must clamp its
//! event horizon to [`FaultSchedule::next_at`]: promising a quiet window
//! across a scheduled fault would let the fast-forward loop skip it.

use crate::prng::{draw, unit};

/// Salt for the gap draw of event `k` (payload draws use other salts).
const SALT_GAP: u64 = 0;

/// A deterministic stream of absolute fault cycles.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    seed: u64,
    domain: u64,
    /// Per-cycle event probability; `0` disables the stream.
    rate: f64,
    /// Index of the next event (keys its gap and payload draws).
    k: u64,
    /// Absolute cycle of the next event; `u64::MAX` when disabled.
    next_at: u64,
}

impl FaultSchedule {
    /// Builds the schedule and materializes the first arrival cycle.
    #[must_use]
    pub fn new(seed: u64, domain: u64, rate: f64) -> FaultSchedule {
        let mut s = FaultSchedule {
            seed,
            domain,
            rate: if rate.is_nan() {
                0.0
            } else {
                rate.clamp(0.0, 1.0)
            },
            k: 0,
            next_at: u64::MAX,
        };
        if s.rate > 0.0 {
            s.next_at = s.gap(0).saturating_sub(1); // first event ≥ cycle 0
        }
        s
    }

    /// Geometric inter-arrival gap (≥ 1) for event `k`.
    fn gap(&self, k: u64) -> u64 {
        let u = unit(draw(self.seed, self.domain, k, SALT_GAP));
        // Inverse-CDF of the geometric distribution with success
        // probability `rate`: floor(ln(1-u)/ln(1-rate)) + 1. ln_1p keeps
        // precision at the tiny rates the sweeps use (1e-9 and below).
        let g = ((-u).ln_1p() / (-self.rate).ln_1p()).floor();
        if g >= 9.0e18 {
            u64::MAX
        } else {
            g as u64 + 1
        }
    }

    /// Absolute cycle of the next scheduled event (`u64::MAX` = never).
    #[inline]
    #[must_use]
    pub fn next_at(&self) -> u64 {
        self.next_at
    }

    /// Whether an event is due at or before `now`.
    #[inline]
    #[must_use]
    pub fn due(&self, now: u64) -> bool {
        self.next_at <= now
    }

    /// Consumes the due event and returns a payload draw for it (pure in
    /// the event index), advancing `next_at` to the following arrival.
    pub fn pop(&mut self, salt: u64) -> u64 {
        debug_assert_ne!(self.next_at, u64::MAX, "pop on a disabled schedule");
        let payload = draw(self.seed, self.domain, self.k, salt);
        self.k += 1;
        self.next_at = self.next_at.saturating_add(self.gap(self.k));
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let s = FaultSchedule::new(1, 2, 0.0);
        assert_eq!(s.next_at(), u64::MAX);
        assert!(!s.due(u64::MAX - 1));
    }

    #[test]
    fn arrivals_are_deterministic_and_strictly_increasing() {
        let mut a = FaultSchedule::new(9, 3, 1e-3);
        let mut b = FaultSchedule::new(9, 3, 1e-3);
        let mut prev = None;
        for _ in 0..100 {
            assert_eq!(a.next_at(), b.next_at());
            if let Some(p) = prev {
                assert!(a.next_at() > p, "arrivals must advance");
            }
            prev = Some(a.next_at());
            let (pa, pb) = (a.pop(7), b.pop(7));
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn mean_gap_tracks_the_rate() {
        let mut s = FaultSchedule::new(4, 4, 1e-2);
        let mut last = 0;
        let n = 2000;
        for _ in 0..n {
            last = s.next_at();
            s.pop(0);
        }
        let mean = last as f64 / n as f64;
        assert!(
            (mean - 100.0).abs() < 10.0,
            "mean gap {mean} far from 1/rate = 100"
        );
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultSchedule::new(1, 2, 1e-3);
        let b = FaultSchedule::new(2, 2, 1e-3);
        assert_ne!(a.next_at(), b.next_at());
    }
}
