//! Fault-injection configuration.

/// Per-domain fault rates plus the run's fault seed. All rates default to
/// zero; a config with every rate at zero is treated as "no injector" by
/// the system layer, so the zero-rate path is provably identical to a
/// build with no fault plumbing attached.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for every fault PRNG stream. Two runs with equal seeds and
    /// equal rates observe bitwise-identical fault histories.
    pub seed: u64,
    /// Per-bit probability that a DRAM read returns a flipped bit
    /// (transient; the stored value is unharmed).
    pub dram_read_flip_rate: f64,
    /// Per-bit probability that a DRAM cell is manufactured stuck at a
    /// fixed value (permanent; keyed by address, not time).
    pub dram_stuck_rate: f64,
    /// Per-cycle, per-channel probability of a background upset that
    /// flips one stored bit in the channel's address region. The only
    /// activity-independent fault class — it forces event-horizon
    /// invalidation in `Channel::next_event`.
    pub dram_upset_rate: f64,
    /// Per-link-hop probability that a flit arrives corrupted (parity
    /// catches it; the link retransmits at a one-cycle penalty).
    pub noc_corrupt_rate: f64,
    /// Per-link-hop probability that a flit is dropped (the sender's ack
    /// timeout retransmits it after [`crate::NocFaults::DROP_TIMEOUT`]
    /// cycles).
    pub noc_drop_rate: f64,
    /// Per-link-hop probability that a flit takes a wrong turn; X-Y
    /// routing recovers from the new position at the cost of extra hops.
    pub noc_misroute_rate: f64,
    /// Per-MAC-operation probability that one operand bit flips.
    pub pe_mac_rate: f64,
    /// Enable the SECDED(39,32) ECC model on DRAM reads: single-bit
    /// errors are corrected (and counted), double-bit errors detected but
    /// passed through. Check-bit storage and decode cost extra energy —
    /// see `neurocube_power::secded_overhead_j`.
    pub ecc: bool,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            dram_read_flip_rate: 0.0,
            dram_stuck_rate: 0.0,
            dram_upset_rate: 0.0,
            noc_corrupt_rate: 0.0,
            noc_drop_rate: 0.0,
            noc_misroute_rate: 0.0,
            pe_mac_rate: 0.0,
            ecc: false,
        }
    }
}

impl FaultConfig {
    /// A config with every rate set to `rate` (the single-knob sweep the
    /// `NEUROCUBE_FAULT_RATE` variable exposes).
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            dram_read_flip_rate: rate,
            dram_stuck_rate: rate,
            dram_upset_rate: rate,
            noc_corrupt_rate: rate,
            noc_drop_rate: rate,
            noc_misroute_rate: rate,
            pe_mac_rate: rate,
            ecc: false,
        }
    }

    /// Whether any fault domain can actually fire. A disabled config is
    /// equivalent to not attaching an injector at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        [
            self.dram_read_flip_rate,
            self.dram_stuck_rate,
            self.dram_upset_rate,
            self.noc_corrupt_rate,
            self.noc_drop_rate,
            self.noc_misroute_rate,
            self.pe_mac_rate,
        ]
        .iter()
        .any(|&r| r > 0.0)
    }

    /// Reads the process-wide fault configuration from the environment
    /// (see `crates/sim`'s `env` module for the parsing rules):
    ///
    /// * `NEUROCUBE_FAULT_RATE` — uniform rate for every domain; unset,
    ///   empty, unparseable or `0` means "no injector".
    /// * `NEUROCUBE_FAULT_SEED` — fault seed (default `0`).
    /// * `NEUROCUBE_FAULT_ECC` — truthy enables the SECDED model.
    #[must_use]
    pub fn from_env() -> Option<FaultConfig> {
        let rate = neurocube_sim::env_f64("NEUROCUBE_FAULT_RATE")?;
        if rate.is_nan() || rate <= 0.0 {
            return None;
        }
        let seed = neurocube_sim::env_u64("NEUROCUBE_FAULT_SEED").unwrap_or(0);
        let mut cfg = FaultConfig::uniform(seed, rate);
        cfg.ecc = neurocube_sim::env_flag("NEUROCUBE_FAULT_ECC");
        Some(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        assert!(!FaultConfig::default().enabled());
    }

    #[test]
    fn uniform_nonzero_is_enabled() {
        assert!(FaultConfig::uniform(1, 1e-9).enabled());
        assert!(!FaultConfig::uniform(1, 0.0).enabled());
    }
}
