//! Per-component fault lenses: the small stateful objects each simulated
//! component holds when injection is enabled. All randomness flows
//! through the pure [`draw`](crate::draw) keyed by absolute cycle (or
//! address / event index), so a lens carries only counters and, for the
//! DRAM, the background-upset schedule.

use crate::config::FaultConfig;
use crate::domain;
use crate::prng::{draw, Bernoulli};
use crate::schedule::FaultSchedule;

/// Counters for the DRAM fault domain (monotonic; reported under the
/// system's `fault.dram.*` statistics scope).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramFaultCounts {
    /// Transient read bit-flips injected (before ECC).
    pub read_flips: u64,
    /// Reads that hit a stuck-at cell whose forced value differed from
    /// the stored data.
    pub stuck_bits: u64,
    /// Background upsets applied to resident storage.
    pub upsets: u64,
    /// Background upsets that landed on never-written (all-zero, absent)
    /// pages and were absorbed without materializing them.
    pub upsets_absorbed: u64,
    /// Single-bit read errors corrected by SECDED.
    pub ecc_corrected: u64,
    /// Multi-bit read errors SECDED detected but could not correct.
    pub ecc_detected: u64,
    /// Words that passed through the SECDED decoder (each carries 7
    /// check bits of storage/transfer overhead — see `crates/power`).
    pub ecc_words: u64,
}

impl DramFaultCounts {
    /// Accumulates another counter set (aggregation across channels).
    pub fn merge(&mut self, other: &DramFaultCounts) {
        self.read_flips += other.read_flips;
        self.stuck_bits += other.stuck_bits;
        self.upsets += other.upsets;
        self.upsets_absorbed += other.upsets_absorbed;
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_detected += other.ecc_detected;
        self.ecc_words += other.ecc_words;
    }
}

/// DRAM-channel fault lens: transient read flips, a static stuck-at cell
/// map, and the background-upset schedule that clamps event horizons.
#[derive(Clone, Debug)]
pub struct DramFaults {
    seed: u64,
    channel: u16,
    /// Per-word trial for one transient flip candidate (per-bit rate
    /// linearized over the 32 data bits; exact to O(rate²), which at the
    /// swept rates ≤ 1e-4/bit is far below counter resolution).
    read_flip: Bernoulli,
    /// Per-word trial for a stuck-at cell (same linearization; at most
    /// one stuck bit is modeled per word).
    stuck: Bernoulli,
    ecc: bool,
    schedule: FaultSchedule,
    /// Monotonic event counters.
    pub counts: DramFaultCounts,
}

impl DramFaults {
    /// Builds the lens for channel `channel` from the run config.
    #[must_use]
    pub fn new(cfg: &FaultConfig, channel: u16) -> DramFaults {
        DramFaults {
            seed: cfg.seed,
            channel,
            read_flip: Bernoulli::new((cfg.dram_read_flip_rate * 32.0).clamp(0.0, 1.0)),
            stuck: Bernoulli::new((cfg.dram_stuck_rate * 32.0).clamp(0.0, 1.0)),
            ecc: cfg.ecc,
            schedule: FaultSchedule::new(
                cfg.seed,
                domain::dram_upset(channel),
                cfg.dram_upset_rate,
            ),
            counts: DramFaultCounts::default(),
        }
    }

    /// Whether the SECDED model is active.
    #[must_use]
    pub fn ecc_enabled(&self) -> bool {
        self.ecc
    }

    /// Absolute cycle of the next scheduled background upset
    /// (`u64::MAX` = never).
    #[inline]
    #[must_use]
    pub fn next_upset(&self) -> u64 {
        self.schedule.next_at()
    }

    /// Clamps a component's event-horizon promise to the next scheduled
    /// fault. `None` (tick me now) stays `None`; any quiet window is cut
    /// at the upset cycle; an upset due at or before `now` forces an
    /// immediate tick. Every `next_event` return path of a fault-bearing
    /// component must pass through this.
    #[inline]
    #[must_use]
    pub fn clamp(&self, now: u64, horizon: Option<u64>) -> Option<u64> {
        let at = self.schedule.next_at();
        if at == u64::MAX {
            return horizon;
        }
        if at <= now {
            return None;
        }
        horizon.map(|t| t.min(at))
    }

    /// Whether a background upset is due at or before `now`.
    #[inline]
    #[must_use]
    pub fn upset_due(&self, now: u64) -> bool {
        self.schedule.due(now)
    }

    /// Consumes the due upset, returning `(address_draw, bit)`: the
    /// caller maps `address_draw` into its address region and flips
    /// `bit` of the stored word there.
    pub fn pop_upset(&mut self) -> (u64, u32) {
        let d = self.schedule.pop(1);
        (d >> 5, (d & 31) as u32)
    }

    /// Filters one 32-bit word read by the channel at cycle `now` from
    /// `addr`: applies the stuck-at map and transient flips, then the
    /// SECDED model. Returns the word the requester observes.
    pub fn filter_read(&mut self, now: u64, addr: u64, word: u32) -> u32 {
        let mut out = word;
        let mut injected = 0u32;
        if !self.stuck.is_never() {
            let d = draw(self.seed, domain::dram_stuck(self.channel), addr, 0);
            if self.stuck.hit(d) {
                let sel = draw(self.seed, domain::dram_stuck(self.channel), addr, 1);
                let bit = (sel & 31) as u32;
                let val = ((sel >> 5) & 1) as u32;
                let forced = (out & !(1 << bit)) | (val << bit);
                if forced != out {
                    self.counts.stuck_bits += 1;
                    out = forced;
                    injected += 1;
                }
            }
        }
        if !self.read_flip.is_never() {
            // Two independent flip candidates per word: singles dominate
            // (SECDED-correctable), doubles appear at O(rate²)
            // (SECDED-detectable), matching the error classes the code
            // distinguishes.
            for salt in [0u64, 1] {
                let d = draw(
                    self.seed,
                    domain::dram_read(self.channel),
                    now,
                    addr.wrapping_mul(2).wrapping_add(salt),
                );
                if self.read_flip.hit(d) {
                    let bit = (draw(
                        self.seed,
                        domain::dram_read(self.channel),
                        now,
                        addr.wrapping_mul(2).wrapping_add(salt) ^ 0x8000_0000_0000_0000,
                    ) & 31) as u32;
                    out ^= 1 << bit;
                    self.counts.read_flips += 1;
                    injected += 1;
                }
            }
        }
        if self.ecc {
            self.counts.ecc_words += 1;
            match injected {
                0 => {}
                1 => {
                    self.counts.ecc_corrected += 1;
                    out = word;
                }
                _ => self.counts.ecc_detected += 1,
            }
        }
        out
    }
}

/// What happened to one flit on one link hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFault {
    /// Clean traversal.
    None,
    /// Arrived corrupted; parity caught it and the link retransmits
    /// (one-cycle penalty).
    Corrupt,
    /// Lost on the link; the sender's ack timeout retransmits after
    /// [`NocFaults::DROP_TIMEOUT`] cycles.
    Drop,
    /// Delivered out the wrong port; per-hop routing recovers.
    Misroute,
}

/// Counters for the NoC fault domain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NocFaultCounts {
    /// Flits that arrived corrupted (all caught by parity).
    pub corrupt: u64,
    /// Flits dropped on a link.
    pub drops: u64,
    /// Flits sent out a wrong port.
    pub misroutes: u64,
    /// Link-level retransmissions (one per corrupt, one per drop).
    pub retransmits: u64,
    /// Packets presented for injection with an unroutable destination
    /// and dropped at the source (the de-panicked `inject` path).
    pub unroutable: u64,
    /// Packets a component received but could not accept (misdelivery,
    /// unknown kind) and dropped after counting.
    pub dropped_packets: u64,
}

impl NocFaultCounts {
    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &NocFaultCounts) {
        self.corrupt += other.corrupt;
        self.drops += other.drops;
        self.misroutes += other.misroutes;
        self.retransmits += other.retransmits;
        self.unroutable += other.unroutable;
        self.dropped_packets += other.dropped_packets;
    }
}

/// NoC fault lens: per-link-hop corruption, drops, and misroutes.
#[derive(Clone, Debug)]
pub struct NocFaults {
    seed: u64,
    corrupt: Bernoulli,
    drop: Bernoulli,
    misroute: Bernoulli,
    /// Monotonic event counters.
    pub counts: NocFaultCounts,
}

impl NocFaults {
    /// Cycles a dropped flit waits at the sender before the modeled ack
    /// timeout retransmits it.
    pub const DROP_TIMEOUT: u64 = 8;

    /// Builds the lens from the run config.
    #[must_use]
    pub fn new(cfg: &FaultConfig) -> NocFaults {
        NocFaults {
            seed: cfg.seed,
            corrupt: Bernoulli::new(cfg.noc_corrupt_rate.clamp(0.0, 1.0)),
            drop: Bernoulli::new(cfg.noc_drop_rate.clamp(0.0, 1.0)),
            misroute: Bernoulli::new(cfg.noc_misroute_rate.clamp(0.0, 1.0)),
            counts: NocFaultCounts::default(),
        }
    }

    /// Decides the fate of the flit crossing link `link` at cycle `now`
    /// and counts it. At most one fault fires per hop; drops dominate
    /// misroutes dominate corruption (a lost flit can't also arrive
    /// corrupted).
    pub fn link_event(&mut self, now: u64, link: u64) -> LinkFault {
        if !self.drop.is_never()
            && self
                .drop
                .hit(draw(self.seed, domain::NOC_LINK, now, link * 4))
        {
            self.counts.drops += 1;
            self.counts.retransmits += 1;
            return LinkFault::Drop;
        }
        if !self.misroute.is_never()
            && self
                .misroute
                .hit(draw(self.seed, domain::NOC_LINK, now, link * 4 + 1))
        {
            self.counts.misroutes += 1;
            return LinkFault::Misroute;
        }
        if !self.corrupt.is_never()
            && self
                .corrupt
                .hit(draw(self.seed, domain::NOC_LINK, now, link * 4 + 2))
        {
            self.counts.corrupt += 1;
            self.counts.retransmits += 1;
            return LinkFault::Corrupt;
        }
        LinkFault::None
    }
}

/// Counters for the PE fault domain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeFaultCounts {
    /// MAC operations that fired with a flipped operand bit.
    pub mac_faults: u64,
    /// Packets dropped by the de-panicked acceptance path.
    pub dropped_packets: u64,
}

impl PeFaultCounts {
    /// Accumulates another counter set (aggregation across PEs).
    pub fn merge(&mut self, other: &PeFaultCounts) {
        self.mac_faults += other.mac_faults;
        self.dropped_packets += other.dropped_packets;
    }
}

/// PE fault lens: transient MAC operand faults.
#[derive(Clone, Debug)]
pub struct PeFaults {
    seed: u64,
    pe: u16,
    mac: Bernoulli,
    /// Monotonic event counters.
    pub counts: PeFaultCounts,
}

impl PeFaults {
    /// Builds the lens for PE `pe` from the run config.
    #[must_use]
    pub fn new(cfg: &FaultConfig, pe: u16) -> PeFaults {
        PeFaults {
            seed: cfg.seed,
            pe,
            mac: Bernoulli::new(cfg.pe_mac_rate.clamp(0.0, 1.0)),
            counts: PeFaultCounts::default(),
        }
    }

    /// If MAC `mac` suffers a transient fault at cycle `now`, returns the
    /// operand bit (0..16, the Q1.7.8 width) to flip.
    pub fn mac_upset(&mut self, now: u64, mac: u64) -> Option<u32> {
        if self.mac.is_never() {
            return None;
        }
        let d = draw(self.seed, domain::pe_mac(self.pe), now, mac * 2);
        if !self.mac.hit(d) {
            return None;
        }
        self.counts.mac_faults += 1;
        Some((draw(self.seed, domain::pe_mac(self.pe), now, mac * 2 + 1) & 15) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64) -> FaultConfig {
        FaultConfig::uniform(0xFA_u64, rate)
    }

    #[test]
    fn dram_filter_is_identity_at_zero_rate() {
        let mut f = DramFaults::new(&cfg(0.0), 0);
        for addr in (0..4096).step_by(4) {
            assert_eq!(f.filter_read(17, addr, 0xA5A5_5A5A), 0xA5A5_5A5A);
        }
        assert_eq!(f.counts, DramFaultCounts::default());
        assert_eq!(f.next_upset(), u64::MAX);
    }

    #[test]
    fn dram_clamp_cuts_quiet_windows_at_the_next_upset() {
        let mut c = cfg(0.0);
        c.dram_upset_rate = 1e-2;
        let f = DramFaults::new(&c, 3);
        let at = f.next_upset();
        assert_ne!(at, u64::MAX);
        if at > 0 {
            // A quiet promise beyond the upset is cut to it.
            assert_eq!(f.clamp(0, Some(at + 1000)), Some(at));
            // A reactive promise is cut the same way.
            assert_eq!(f.clamp(0, Some(u64::MAX)), Some(at));
        }
        // At the upset cycle the component must tick.
        assert_eq!(f.clamp(at, Some(at + 1000)), None);
        // Promises that end earlier survive.
        if at > 1 {
            assert_eq!(f.clamp(0, Some(1)), Some(1));
        }
        // "Tick me now" stays.
        assert_eq!(f.clamp(0, None), None);
    }

    #[test]
    fn ecc_corrects_single_flips() {
        let mut c = cfg(0.0);
        c.dram_read_flip_rate = 1.0 / 64.0; // per-word candidate rate 0.5
        c.ecc = true;
        let mut f = DramFaults::new(&c, 1);
        let mut corrupted_out = 0u64;
        for now in 0..20_000u64 {
            let got = f.filter_read(now, 0x100, 0xDEAD_BEEF);
            if got != 0xDEAD_BEEF {
                corrupted_out += 1;
            }
        }
        assert!(f.counts.ecc_corrected > 0, "singles must occur");
        assert!(f.counts.ecc_detected > 0, "doubles must occur at this rate");
        // Only detected-uncorrectable words may escape corrupted, and a
        // double flip on the same bit re-corrects the word by accident.
        assert!(corrupted_out <= f.counts.ecc_detected);
        assert_eq!(f.counts.ecc_words, 20_000);
    }

    #[test]
    fn stuck_cells_are_stable_across_time() {
        let mut c = cfg(0.0);
        c.dram_stuck_rate = 0.01;
        let mut f = DramFaults::new(&c, 2);
        let a = f.filter_read(100, 0x40, 0xFFFF_FFFF);
        let b = f.filter_read(9_999, 0x40, 0xFFFF_FFFF);
        assert_eq!(a, b, "a stuck cell must read back the same value");
    }

    #[test]
    fn noc_zero_rate_never_faults() {
        let mut f = NocFaults::new(&cfg(0.0));
        for now in 0..1000 {
            assert_eq!(f.link_event(now, now % 64), LinkFault::None);
        }
        assert_eq!(f.counts, NocFaultCounts::default());
    }

    #[test]
    fn noc_events_are_reproducible() {
        let mut a = NocFaults::new(&cfg(1e-2));
        let mut b = NocFaults::new(&cfg(1e-2));
        for now in 0..10_000 {
            assert_eq!(a.link_event(now, 5), b.link_event(now, 5));
        }
        assert_eq!(a.counts, b.counts);
        assert!(a.counts.drops + a.counts.misroutes + a.counts.corrupt > 0);
    }

    #[test]
    fn pe_mac_upsets_hit_q88_bits_only() {
        let mut f = PeFaults::new(&cfg(0.05), 7);
        let mut hits = 0;
        for now in 0..10_000 {
            if let Some(bit) = f.mac_upset(now, 3) {
                assert!(bit < 16);
                hits += 1;
            }
        }
        assert_eq!(hits, f.counts.mac_faults);
        assert!(hits > 0);
    }
}
