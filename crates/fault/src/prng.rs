//! Counter-mode PRNG: a reduced-round `ChaCha`-style block function.
//!
//! [`draw`] is a *pure* function of `(seed, domain, cycle, salt)` — there
//! is no stream state to advance, so the skipping and naive simulation
//! loops cannot desynchronize: a component that asks the same question at
//! the same absolute cycle gets the same answer in either mode. Eight
//! rounds of the `ChaCha` quarter-round give full avalanche on every key
//! word, which is all a fault model needs (this is a statistical source,
//! not a cryptographic one).

/// The `ChaCha` "expand 32-byte k" constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// One 64-bit draw keyed by `(seed, domain, cycle, salt)`.
///
/// `seed` is the run's fault seed, `domain` a [`crate::domain`] code,
/// `cycle` the absolute simulation cycle (or an event/address counter for
/// time-independent domains), and `salt` disambiguates multiple draws at
/// the same key point.
#[must_use]
pub fn draw(seed: u64, domain: u64, cycle: u64, salt: u64) -> u64 {
    let mut s: [u32; 16] = [
        SIGMA[0],
        SIGMA[1],
        SIGMA[2],
        SIGMA[3],
        seed as u32,
        (seed >> 32) as u32,
        domain as u32,
        (domain >> 32) as u32,
        cycle as u32,
        (cycle >> 32) as u32,
        salt as u32,
        (salt >> 32) as u32,
        0x9E37_79B9,
        0x7F4A_7C15,
        0x85EB_CA6B,
        0xC2B2_AE35,
    ];
    let input = s;
    for _ in 0..4 {
        // Column round.
        quarter(&mut s, 0, 4, 8, 12);
        quarter(&mut s, 1, 5, 9, 13);
        quarter(&mut s, 2, 6, 10, 14);
        quarter(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut s, 0, 5, 10, 15);
        quarter(&mut s, 1, 6, 11, 12);
        quarter(&mut s, 2, 7, 8, 13);
        quarter(&mut s, 3, 4, 9, 14);
    }
    for (w, i) in s.iter_mut().zip(input) {
        *w = w.wrapping_add(i);
    }
    u64::from(s[0]) | (u64::from(s[1]) << 32)
}

/// Maps a draw to a uniform `f64` in `[0, 1)` (53 mantissa bits).
#[must_use]
pub fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A Bernoulli trial over 64-bit draws: `hit(x)` is true with probability
/// `p` when `x` is uniform. The threshold is computed in 128-bit space so
/// `p = 1.0` hits every draw and `p = 0.0` hits none, exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bernoulli {
    threshold: u128,
}

impl Bernoulli {
    /// Builds a trial with probability `p`, clamped to `[0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Bernoulli {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        // p * 2^64, exact at both endpoints.
        let threshold = (p * (u128::from(u64::MAX) + 1) as f64) as u128;
        Bernoulli {
            threshold: threshold.min(u128::from(u64::MAX) + 1),
        }
    }

    /// Whether the draw `x` lands inside the probability window.
    #[inline]
    #[must_use]
    pub fn hit(&self, x: u64) -> bool {
        u128::from(x) < self.threshold
    }

    /// True when the trial can never hit (`p == 0`); lets hot paths skip
    /// the draw entirely.
    #[inline]
    #[must_use]
    pub fn is_never(&self) -> bool {
        self.threshold == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_key_bit_changes_flip_about_half_the_output() {
        let base = draw(0xDEAD_BEEF, 1, 1000, 0);
        for bit in 0..64 {
            let flipped = draw(0xDEAD_BEEF ^ (1 << bit), 1, 1000, 0);
            let dist = (base ^ flipped).count_ones();
            assert!(
                (10..=54).contains(&dist),
                "weak avalanche on seed bit {bit}: distance {dist}"
            );
        }
    }

    #[test]
    fn consecutive_cycles_are_uncorrelated_enough_for_rates() {
        // Mean of 10k consecutive-cycle draws, folded to [0,1), should be
        // near 1/2 (this is a sanity bound, not a statistical test suite).
        let mean = (0..10_000).map(|c| unit(draw(42, 42, c, 0))).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
