//! Multi-cube scaling study — the paper's concluding future-work item
//! ("scaling this implementation across multiple cubes"), quantified.
//!
//! Data-parallel banding of the scene-labeling network over 1–8 cubes
//! linked by HMC external SERDES: aggregate throughput, scaling
//! efficiency, and the link share of the critical path. The FC stage's
//! input all-gather is the scaling hazard — visible as the link share
//! rising with cube count, and in the per-layer latency percentiles:
//! the p90/max layer cycles stop shrinking with cube count long before
//! the p50 does, because the gather-bound layers don't band.

use neurocube::{LinkModel, MultiCube, SystemConfig};
use neurocube_bench::{csv_f, header, ramp_input, scene_scale, CsvSink};
use neurocube_nn::workloads;
use neurocube_sim::Histogram;

fn main() {
    let (h, w, label) = scene_scale();
    header(
        "Scaling",
        &format!("multi-cube data-parallel scaling, scene labeling {w}x{h} [{label}]"),
    );
    let spec = workloads::scene_labeling(h, w).expect("geometry fits");
    let params = spec.init_params(31, 0.2);
    let input = ramp_input(&spec);

    let mut csv = CsvSink::create(
        "scaling_multicube",
        &[
            "cubes",
            "cycles",
            "gops",
            "link_cycles",
            "efficiency",
            "layer_p50",
            "layer_p90",
            "layer_max",
        ],
    );
    let mut single_cycles = 0u64;
    println!(
        "{:<7} {:>14} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "cubes",
        "cycles",
        "GOPs/s",
        "link cycles",
        "link share",
        "efficiency",
        "layer p50",
        "layer p90",
        "layer max"
    );
    for cubes in [1usize, 2, 4, 8] {
        let cluster = MultiCube::new(SystemConfig::paper(true), cubes, LinkModel::hmc_ext());
        let (_, report) = cluster.run_inference(&spec, &params, &input);
        if cubes == 1 {
            single_cycles = report.total_cycles();
        }
        // Per-layer critical-path distribution: the exact-multiset
        // histogram kind the serving layer uses for request latencies,
        // here exposing which layers stop scaling with cube count.
        let mut layers = Histogram::new();
        for l in &report.layers {
            layers.record(l.cycles());
        }
        let p50 = layers.percentile(0.50).unwrap_or(0);
        let p90 = layers.percentile(0.90).unwrap_or(0);
        let lmax = layers.max().unwrap_or(0);
        csv.row(&[
            cubes.to_string(),
            report.total_cycles().to_string(),
            csv_f(report.throughput_gops()),
            report.link_cycles().to_string(),
            csv_f(report.scaling_efficiency(single_cycles)),
            p50.to_string(),
            p90.to_string(),
            lmax.to_string(),
        ]);
        println!(
            "{:<7} {:>14} {:>12.1} {:>12} {:>11.2}% {:>9.2} {:>10} {:>10} {:>10}",
            cubes,
            report.total_cycles(),
            report.throughput_gops(),
            report.link_cycles(),
            100.0 * report.link_cycles() as f64 / report.total_cycles() as f64,
            report.scaling_efficiency(single_cycles),
            p50,
            p90,
            lmax,
        );
    }
    println!(
        "\nreading: conv/pool bands scale nearly linearly (halo rows are cheap over\n\
         40 GB/s links); the FC stage's input all-gather and its fixed per-band\n\
         pipeline fill bound the efficiency — the quantitative version of the\n\
         paper's closing sentence."
    );
}
