//! Two-speed serving benchmark: analytical-mode throughput at
//! million-request scale, audit overhead versus sample rate, and the
//! zero-envelope-violations gate.
//!
//! Three measurements:
//!
//! 1. **Scenario sweep** — each named traffic scenario (steady /
//!    diurnal / rush, with its priority tiers) drives 10⁶ requests
//!    through the scheduler and the analytical fast path. The models
//!    are *synthetic twins* of profiled real networks: same memoized
//!    service and reprogram cycles, so the virtual-time numbers are the
//!    real mix's, while the trace stays million-request-cheap. All
//!    virtual-time fields are deterministic; the wall-clock
//!    requests/sec column is the one machine-dependent number.
//! 2. **Audit overhead curve** — a real-model trace replayed through
//!    the two-speed executor at increasing audit rates; every audited
//!    dispatch replays cycle- and value-accurately on a fresh cube, and
//!    the wall-clock cost per audited request is reported. The
//!    audited subset must be bitwise identical serial vs threaded vs
//!    rerun, and **zero envelope violations at any rate is a hard
//!    gate**.
//! 3. **Fast-path speedup** — the same real-model schedule executed
//!    once with full cycle-accurate replay and once analytically; the
//!    wall-clock ratio must clear 100× (override with
//!    `NEUROCUBE_BENCH_TWOSPEED_MIN_SPEEDUP`).
//!
//! Output goes to `BENCH_twospeed.json` at the workspace root (override
//! with `NEUROCUBE_BENCH_TWOSPEED_OUT`).

use neurocube::SystemConfig;
use neurocube_bench::header;
use neurocube_fixed::Activation;
use neurocube_nn::{workloads, LayerSpec, NetworkSpec, Shape};
use neurocube_serve::{
    execute, execute_two_speed, generate, serve_mode, ExecMode, ModelCatalog, ServeConfig,
    TrafficSpec, TwoSpeedConfig, SCENARIOS,
};
use std::path::PathBuf;
use std::time::Instant;

const SWEEP_REQUESTS: u64 = 1_000_000;
const AUDIT_TRACE_REQUESTS: u64 = 2_000;
const AUDIT_RATES: [f64; 4] = [0.0, 0.005, 0.02, 0.1];
const POOL: usize = 4;
const DEFAULT_MIN_SPEEDUP: f64 = 100.0;

/// The real tenant pair every measurement is anchored to: the tiny
/// convnet and a small MLP — small enough that full cycle-accurate
/// replay of thousands of inferences stays benchmark-friendly.
fn real_catalog() -> ModelCatalog {
    let mut cat = ModelCatalog::new(SystemConfig::paper(true));
    cat.register("conv", workloads::tiny_convnet(), 41);
    let mlp = NetworkSpec::new(
        Shape::new(1, 8, 8),
        vec![
            LayerSpec::fc(8, Activation::ReLU),
            LayerSpec::fc(4, Activation::Identity),
        ],
    )
    .expect("geometry fits");
    cat.register("mlp", mlp, 42);
    cat
}

/// Synthetic twins of the real catalog: same names, same memoized
/// timings, no payload — the scheduler and analytical path price them
/// identically, but the trace carries 1-element payloads, so a
/// million-request sweep stays cheap.
fn twin_catalog(real: &ModelCatalog) -> ModelCatalog {
    let mut twins = ModelCatalog::new(real.config().clone());
    for e in real.entries() {
        twins.register_synthetic(&e.name, e.service_cycles, e.reprogram_cycles);
    }
    twins
}

fn mix(cat: &ModelCatalog) -> Vec<(String, u32)> {
    cat.entries().map(|e| (e.name.clone(), 1)).collect()
}

fn serve_cfg(cat: &ModelCatalog) -> ServeConfig {
    let avg_service =
        cat.entries().map(|e| e.service_cycles).sum::<u64>() as f64 / cat.len() as f64;
    ServeConfig {
        pool: POOL,
        max_batch: 8,
        max_delay: avg_service as u64,
        queue_cap: 64,
    }
}

struct SweepRow {
    scenario: &'static str,
    offered: u64,
    completed: u64,
    shed: u64,
    rejected: u64,
    p50: u64,
    p99: u64,
    makespan: u64,
    goodput_per_mcycle: f64,
    analytical_cycles: u64,
    wall_ms: f64,
    requests_per_sec: f64,
}

struct CurveRow {
    rate: f64,
    coverage: f64,
    audited_dispatches: u64,
    audited_requests: u64,
    violations: u64,
    slack_lower_min: u64,
    slack_upper_min: u64,
    wall_ms: f64,
    ms_per_audited_request: f64,
}

fn write_json(
    sweep: &[SweepRow],
    curve: &[CurveRow],
    replay_ms: f64,
    analytical_ms: f64,
    speedup: f64,
    min_speedup: f64,
    path: &PathBuf,
) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"pool\": {POOL},\n  \"sweep_requests_per_point\": {SWEEP_REQUESTS},\n"
    ));
    out.push_str(&format!(
        "  \"audit_trace_requests\": {AUDIT_TRACE_REQUESTS},\n"
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"offered\": {}, \"completed\": {}, \
             \"shed\": {}, \"rejected\": {}, \"latency_p50\": {}, \"latency_p99\": {}, \
             \"makespan_cycles\": {}, \"goodput_per_mcycle\": {:.4}, \
             \"analytical_cycles\": {}, \"wall_ms\": {:.1}, \
             \"requests_per_sec\": {:.0}}}{}\n",
            r.scenario,
            r.offered,
            r.completed,
            r.shed,
            r.rejected,
            r.p50,
            r.p99,
            r.makespan,
            r.goodput_per_mcycle,
            r.analytical_cycles,
            r.wall_ms,
            r.requests_per_sec,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"audit_curve\": [\n");
    for (i, r) in curve.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rate\": {:.4}, \"coverage\": {:.4}, \"audited_dispatches\": {}, \
             \"audited_requests\": {}, \"violations\": {}, \"slack_lower_min\": {}, \
             \"slack_upper_min\": {}, \"wall_ms\": {:.1}, \
             \"ms_per_audited_request\": {:.3}}}{}\n",
            r.rate,
            r.coverage,
            r.audited_dispatches,
            r.audited_requests,
            r.violations,
            r.slack_lower_min,
            r.slack_upper_min,
            r.wall_ms,
            r.ms_per_audited_request,
            if i + 1 < curve.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"replay_comparison\": {{\"full_replay_wall_ms\": {replay_ms:.1}, \
         \"analytical_wall_ms\": {analytical_ms:.3}, \"speedup\": {speedup:.0}, \
         \"min_speedup_gate\": {min_speedup:.0}}},\n"
    ));
    out.push_str("  \"violations_total\": 0\n}\n");
    std::fs::write(path, out).expect("write BENCH_twospeed.json");
}

fn main() {
    header(
        "BENCH_twospeed",
        "analytical fast path at 10^6 requests/point with sampled cycle-accurate audits",
    );
    let real = real_catalog();
    let twins = twin_catalog(&real);

    // --- 1. Million-request scenario sweep on the analytical path ---
    let cfg = serve_cfg(&twins);
    let avg_service =
        twins.entries().map(|e| e.service_cycles).sum::<u64>() as f64 / twins.len() as f64;
    let sat_gap = avg_service / POOL as f64;
    println!(
        "\nscenario sweep: {} requests/point, pool {}, mean gap {:.0} cycles",
        SWEEP_REQUESTS, POOL, sat_gap
    );
    println!(
        "{:>9} {:>10} {:>10} {:>8} {:>8} {:>10} {:>10} {:>12}",
        "scenario", "completed", "shed", "p50", "p99", "goodput/Mc", "wall ms", "req/s"
    );
    let mut sweep: Vec<SweepRow> = Vec::new();
    for (i, sc) in SCENARIOS.iter().enumerate() {
        let spec =
            TrafficSpec::poisson(0x2540_0000 + i as u64, sat_gap, SWEEP_REQUESTS, mix(&twins))
                .with_scenario(sc);
        let start = Instant::now();
        let trace = generate(&twins, &spec);
        let report = serve_mode(&twins, &cfg, &trace, Some(true));
        // Analytical execution: priced from the profile, no cubes (the
        // twins could not be replayed anyway — rate 0 never tries).
        let two = execute_two_speed(
            &real, // same timings; entry() is by tag, twins mirror real
            &trace,
            &report.records,
            &TwoSpeedConfig::new(7, 0.0),
            ExecMode::Serial,
        );
        let wall = start.elapsed().as_secs_f64();
        assert!(
            two.violations.is_empty(),
            "{}: analytical pass must be clean",
            sc.name
        );
        let lat = report.latency();
        let row = SweepRow {
            scenario: sc.name,
            offered: report.stats.counter("serve.requests.offered"),
            completed: report.completed(),
            shed: report.shed(),
            rejected: report.rejected(),
            p50: lat.percentile(0.50).unwrap_or(0),
            p99: lat.percentile(0.99).unwrap_or(0),
            makespan: report.makespan,
            goodput_per_mcycle: report.completed() as f64 * 1e6 / report.makespan.max(1) as f64,
            analytical_cycles: two.stats.counter("serve.twospeed.cycles.analytical"),
            wall_ms: wall * 1e3,
            requests_per_sec: SWEEP_REQUESTS as f64 / wall,
        };
        println!(
            "{:>9} {:>10} {:>10} {:>8} {:>8} {:>10.1} {:>10.0} {:>12.0}",
            row.scenario,
            row.completed,
            row.shed,
            row.p50,
            row.p99,
            row.goodput_per_mcycle,
            row.wall_ms,
            row.requests_per_sec
        );
        assert!(
            row.completed > 0 && row.analytical_cycles > 0,
            "{}: the sweep must complete requests analytically",
            sc.name
        );
        sweep.push(row);
    }

    // --- 2. Audit overhead vs sample rate on the real-model trace ---
    let real_cfg = serve_cfg(&real);
    let spec = TrafficSpec::poisson(0xa0d1, sat_gap, AUDIT_TRACE_REQUESTS, mix(&real));
    let trace = generate(&real, &spec);
    let report = serve_mode(&real, &real_cfg, &trace, Some(true));
    println!(
        "\naudit curve: {} requests, {} dispatches",
        AUDIT_TRACE_REQUESTS,
        report.records.len()
    );
    println!(
        "{:>7} {:>9} {:>10} {:>9} {:>11} {:>10} {:>10}",
        "rate", "coverage", "audited", "requests", "violations", "wall ms", "ms/audit"
    );
    let mut curve: Vec<CurveRow> = Vec::new();
    for &rate in &AUDIT_RATES {
        let tcfg = TwoSpeedConfig::new(0xbead, rate);
        let start = Instant::now();
        let serial = execute_two_speed(&real, &trace, &report.records, &tcfg, ExecMode::Serial);
        let wall = start.elapsed().as_secs_f64();
        // Hard gates: zero violations at every rate, and the audited
        // subset bitwise identical across serial / threaded / rerun.
        assert!(
            serial.violations.is_empty(),
            "rate {rate}: envelope violations: {:?}",
            serial.violations
        );
        let threaded = execute_two_speed(&real, &trace, &report.records, &tcfg, ExecMode::Batched);
        let rerun = execute_two_speed(&real, &trace, &report.records, &tcfg, ExecMode::Serial);
        for other in [&threaded, &rerun] {
            assert_eq!(serial.audited, other.audited, "audited subset must be pure");
            assert_eq!(serial.audits, other.audits);
            assert_eq!(serial.stats.first_difference(&other.stats), None);
        }
        let slack_min = |key: &str| {
            serial
                .stats
                .histogram(key)
                .and_then(neurocube_sim::Histogram::min)
                .unwrap_or(0)
        };
        let audited_requests = serial.stats.counter("serve.twospeed.audit.requests");
        let row = CurveRow {
            rate,
            coverage: serial.stats.gauge("serve.twospeed.audit.coverage"),
            audited_dispatches: serial.stats.counter("serve.twospeed.audit.dispatches"),
            audited_requests,
            violations: serial.stats.counter("serve.twospeed.audit.violations"),
            slack_lower_min: slack_min("serve.twospeed.audit.slack_lower_cycles"),
            slack_upper_min: slack_min("serve.twospeed.audit.slack_upper_cycles"),
            wall_ms: wall * 1e3,
            ms_per_audited_request: if audited_requests > 0 {
                wall * 1e3 / audited_requests as f64
            } else {
                0.0
            },
        };
        println!(
            "{:>7.3} {:>8.1}% {:>10} {:>9} {:>11} {:>10.1} {:>10.3}",
            row.rate,
            row.coverage * 100.0,
            row.audited_dispatches,
            row.audited_requests,
            row.violations,
            row.wall_ms,
            row.ms_per_audited_request
        );
        curve.push(row);
    }
    assert!(
        curve.last().expect("curve has rows").audited_dispatches > 0,
        "the top sample rate must audit something"
    );

    // --- 3. Fast-path speedup gate on a full-replay slice ---
    let slice_spec = TrafficSpec::poisson(0xfa57, sat_gap * 2.0, 60, mix(&real));
    let slice = generate(&real, &slice_spec);
    let slice_report = serve_mode(&real, &real_cfg, &slice, Some(true));
    let start = Instant::now();
    let full = execute(&real, &slice, &slice_report.records, ExecMode::Serial);
    let replay_wall = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let fast = execute_two_speed(
        &real,
        &slice,
        &slice_report.records,
        &TwoSpeedConfig::new(1, 0.0),
        ExecMode::Serial,
    );
    let analytical_wall = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        fast.stats.counter("serve.twospeed.requests"),
        full.counter("serve.exec.requests"),
        "both paths must account the same schedule"
    );
    // Rate 1.0 degeneracy on the same slice: the audit path *is* the
    // executor, checksum for checksum.
    let degen = execute_two_speed(
        &real,
        &slice,
        &slice_report.records,
        &TwoSpeedConfig::new(1, 1.0),
        ExecMode::Batched,
    );
    assert!(degen.violations.is_empty(), "{:?}", degen.violations);
    assert_eq!(
        degen.stats.counter("serve.twospeed.audit.output_checksum"),
        full.counter("serve.exec.output_checksum"),
        "rate 1.0 must fold the executor's checksum"
    );
    let speedup = replay_wall / analytical_wall;
    let min_speedup = neurocube_sim::env_f64("NEUROCUBE_BENCH_TWOSPEED_MIN_SPEEDUP")
        .unwrap_or(DEFAULT_MIN_SPEEDUP);
    println!(
        "\nspeedup: full replay {:.1} ms vs analytical {:.4} ms -> {:.0}x (gate {:.0}x)",
        replay_wall * 1e3,
        analytical_wall * 1e3,
        speedup,
        min_speedup
    );
    assert!(
        speedup >= min_speedup,
        "analytical fast path must be at least {min_speedup}x faster than \
         full replay (measured {speedup:.0}x)"
    );

    let out = std::env::var_os("NEUROCUBE_BENCH_TWOSPEED_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_twospeed.json")
        });
    write_json(
        &sweep,
        &curve,
        replay_wall * 1e3,
        analytical_wall * 1e3,
        speedup,
        min_speedup,
        &out,
    );
    println!("\nwrote {}", out.display());
    println!(
        "reading: the sweep rows are virtual-time and deterministic (wall_ms\n\
         and requests_per_sec are the machine-dependent columns); the audit\n\
         curve's overhead grows with the sample rate while violations stay\n\
         zero — the envelope-slack minima show how much certified headroom\n\
         the warmest replay still had."
    );
}
