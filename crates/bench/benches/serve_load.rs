//! Serving-layer load benchmark: offered load vs goodput, latency
//! percentiles, affinity hit rate and shed rate across the knee.
//!
//! Two tenant mixes — the MNIST MLP pair and the Fig. 14 conv shapes —
//! are swept from deep underload (0.25× the pool's saturation rate) to
//! 2× saturation. Every sweep number is *virtual-time*: the scheduler
//! plans in simulated cycles, so the emitted `BENCH_serve.json` is
//! bitwise identical on every rerun of the same build (no wall-clock,
//! no timestamps). Before reporting, the harness replays a small slice
//! of each mix's schedule on real cubes twice — serially and on
//! `BatchRunner` threads — and asserts the merged `serve.exec.*`
//! registries agree bitwise, so the numbers always describe a schedule
//! real hardware-model execution reproduces.
//!
//! Output goes to `BENCH_serve.json` at the workspace root (override
//! with `NEUROCUBE_BENCH_SERVE_OUT`). Built-in sanity gates: the
//! underload point must complete requests with a finite p99 and shed
//! nothing; the 2× point must shed (graceful overload degradation).

use neurocube::SystemConfig;
use neurocube_bench::header;
use neurocube_fixed::Activation;
use neurocube_nn::{workloads, LayerSpec, NetworkSpec, Shape};
use neurocube_serve::{
    execute, generate, serve_mode, ExecMode, ModelCatalog, ServeConfig, TrafficSpec,
};
use std::path::PathBuf;

struct Mix {
    name: &'static str,
    catalog: ModelCatalog,
    mix: Vec<(String, u32)>,
}

fn conv_net(input: usize, maps: usize, kernel: usize) -> NetworkSpec {
    NetworkSpec::new(
        Shape::new(1, input, input),
        vec![LayerSpec::conv(maps, kernel, Activation::Tanh)],
    )
    .expect("geometry fits")
}

/// The two tenant mixes: MNIST MLPs at two widths, and the Fig. 14 conv
/// sweep's kernel end points (input scaled down so the real-execution
/// verification slice stays in benchmark-friendly wall time — the sweep
/// itself is virtual either way).
fn mixes() -> Vec<Mix> {
    let mut mlp = ModelCatalog::new(SystemConfig::paper(true));
    mlp.register("mnist_mlp_32", workloads::mnist_mlp(32), 41);
    mlp.register("mnist_mlp_128", workloads::mnist_mlp(128), 42);
    let mut conv = ModelCatalog::new(SystemConfig::paper(true));
    conv.register("fig14_conv_k3", conv_net(32, 8, 3), 43);
    conv.register("fig14_conv_k7", conv_net(32, 8, 7), 44);
    vec![
        Mix {
            name: "mnist_mlp",
            catalog: mlp,
            mix: vec![
                ("mnist_mlp_32".to_string(), 3),
                ("mnist_mlp_128".to_string(), 1),
            ],
        },
        Mix {
            name: "fig14_conv",
            catalog: conv,
            mix: vec![
                ("fig14_conv_k3".to_string(), 1),
                ("fig14_conv_k7".to_string(), 1),
            ],
        },
    ]
}

/// Offered-load factors relative to the pool's saturation rate.
const LOAD_FACTORS: [f64; 5] = [0.25, 0.5, 1.0, 1.5, 2.0];
const REQUESTS_PER_POINT: u64 = 600;
const POOL: usize = 4;

struct Row {
    mix: &'static str,
    factor: f64,
    mean_gap: u64,
    offered: u64,
    completed: u64,
    shed: u64,
    rejected: u64,
    p50: u64,
    p90: u64,
    p99: u64,
    mean_batch: f64,
    affinity_hit_rate: f64,
    shed_rate: f64,
    offered_per_mcycle: f64,
    goodput_per_mcycle: f64,
    makespan: u64,
}

fn json_escape_free(name: &str) -> &str {
    assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    name
}

fn write_json(rows: &[Row], pool: usize, path: &PathBuf) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"pool\": {pool},\n  \"requests_per_point\": {REQUESTS_PER_POINT},\n"
    ));
    out.push_str("  \"points\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mix\": \"{}\", \"load_factor\": {:.2}, \"mean_gap_cycles\": {}, \
             \"offered\": {}, \"completed\": {}, \"shed\": {}, \"rejected\": {}, \
             \"latency_p50\": {}, \"latency_p90\": {}, \"latency_p99\": {}, \
             \"mean_batch\": {:.4}, \"affinity_hit_rate\": {:.4}, \"shed_rate\": {:.4}, \
             \"offered_per_mcycle\": {:.4}, \"goodput_per_mcycle\": {:.4}, \
             \"makespan_cycles\": {}}}{}\n",
            json_escape_free(r.mix),
            r.factor,
            r.mean_gap,
            r.offered,
            r.completed,
            r.shed,
            r.rejected,
            r.p50,
            r.p90,
            r.p99,
            r.mean_batch,
            r.affinity_hit_rate,
            r.shed_rate,
            r.offered_per_mcycle,
            r.goodput_per_mcycle,
            r.makespan,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_serve.json");
}

fn main() {
    header(
        "BENCH_serve",
        "offered load vs goodput across the saturation knee (virtual time, deterministic)",
    );
    let mut rows: Vec<Row> = Vec::new();
    for m in &mixes() {
        let avg_service = m.catalog.entries().map(|e| e.service_cycles).sum::<u64>() as f64
            / m.catalog.len() as f64;
        let cfg = ServeConfig {
            pool: POOL,
            max_batch: 8,
            max_delay: avg_service as u64,
            queue_cap: 64,
        };
        // Saturation: the pool serves one request every avg_service/POOL
        // cycles once queues never run dry (reprogramming amortized away
        // by affinity). `factor` scales the offered rate against that.
        let sat_gap = avg_service / POOL as f64;

        println!(
            "\nmix {}: avg service {:.0} cycles, pool {}, batching window {} cycles",
            m.name, avg_service, POOL, cfg.max_delay
        );
        println!(
            "{:>7} {:>10} {:>10} {:>6} {:>9} {:>9} {:>9} {:>11} {:>8} {:>8}",
            "load",
            "offered/Mc",
            "goodput/Mc",
            "shed%",
            "p50",
            "p90",
            "p99",
            "mean batch",
            "affin%",
            "rej"
        );
        for (pt, &factor) in LOAD_FACTORS.iter().enumerate() {
            let mean_gap = sat_gap / factor;
            let spec = TrafficSpec::poisson(
                0x5e1_0000 + pt as u64,
                mean_gap,
                REQUESTS_PER_POINT,
                m.mix.clone(),
            );
            let trace = generate(&m.catalog, &spec);
            let report = serve_mode(&m.catalog, &cfg, &trace, Some(true));
            if pt == 0 {
                // One naive-loop cross-check per mix: fast-forward must
                // not change the schedule the sweep reports.
                let naive = serve_mode(&m.catalog, &cfg, &trace, Some(false));
                assert_eq!(
                    report.stats.first_difference(&naive.stats),
                    None,
                    "{}: fast-forward scheduling diverged from the naive loop",
                    m.name
                );
            }
            let lat = report.latency();
            let makespan = report.makespan.max(1);
            let row = Row {
                mix: m.name,
                factor,
                mean_gap: mean_gap as u64,
                offered: report.stats.counter("serve.requests.offered"),
                completed: report.completed(),
                shed: report.shed(),
                rejected: report.rejected(),
                p50: lat.percentile(0.50).unwrap_or(0),
                p90: lat.percentile(0.90).unwrap_or(0),
                p99: lat.percentile(0.99).unwrap_or(0),
                mean_batch: report
                    .stats
                    .histogram("serve.batch_size")
                    .and_then(|h| h.mean())
                    .unwrap_or(0.0),
                affinity_hit_rate: report.stats.gauge("serve.rate.affinity_hit"),
                shed_rate: report.stats.gauge("serve.rate.shed"),
                offered_per_mcycle: report.stats.counter("serve.requests.offered") as f64 * 1e6
                    / makespan as f64,
                goodput_per_mcycle: report.completed() as f64 * 1e6 / makespan as f64,
                makespan: report.makespan,
            };
            println!(
                "{:>6.2}x {:>10.1} {:>10.1} {:>5.1}% {:>9} {:>9} {:>9} {:>11.2} {:>7.0}% {:>8}",
                row.factor,
                row.offered_per_mcycle,
                row.goodput_per_mcycle,
                row.shed_rate * 100.0,
                row.p50,
                row.p90,
                row.p99,
                row.mean_batch,
                row.affinity_hit_rate * 100.0,
                row.rejected,
            );
            rows.push(row);
        }

        // Sanity gates — deterministic, so always on.
        let under = &rows[rows.len() - LOAD_FACTORS.len()];
        assert!(
            under.completed > 0 && under.p99 > 0,
            "{}: underload must complete requests with a finite p99",
            m.name
        );
        assert_eq!(
            under.shed, 0,
            "{}: a pool 4x over-provisioned for the load must not shed",
            m.name
        );
        let over = rows.last().expect("rows pushed");
        assert!(
            over.shed > 0,
            "{}: 2x saturation must shed (graceful overload degradation)",
            m.name
        );
        assert!(
            over.goodput_per_mcycle <= over.offered_per_mcycle,
            "{}: goodput cannot exceed offered load",
            m.name
        );

        // Real-execution verification slice: a short underload trace's
        // schedule replayed on real cubes, serially and threaded — the
        // registries must agree bitwise before this mix's numbers stand.
        let verify_spec = TrafficSpec::poisson(0xbead, sat_gap * 3.0, 10, m.mix.clone());
        let verify_trace = generate(&m.catalog, &verify_spec);
        let verify = serve_mode(&m.catalog, &cfg, &verify_trace, Some(true));
        let serial = execute(&m.catalog, &verify_trace, &verify.records, ExecMode::Serial);
        let threaded = execute(
            &m.catalog,
            &verify_trace,
            &verify.records,
            ExecMode::Batched,
        );
        assert_eq!(
            serial.first_difference(&threaded),
            None,
            "{}: serial and BatchRunner execution registries diverged",
            m.name
        );
        assert_eq!(
            serial.counter("serve.exec.requests"),
            verify.completed(),
            "{}: executor and schedule disagree on request count",
            m.name
        );
        println!(
            "(verified: {} real inferences replay bitwise-identically serial vs threaded)",
            serial.counter("serve.exec.requests")
        );
    }

    let out = std::env::var_os("NEUROCUBE_BENCH_SERVE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_serve.json")
        });
    write_json(&rows, POOL, &out);
    println!("\nwrote {}", out.display());
    println!(
        "reading: goodput tracks offered load until the knee at 1.0x, then\n\
         flattens at pool capacity while the shed rate absorbs the excess;\n\
         affinity keeps reprogramming off the critical path, so batch sizes\n\
         grow with pressure instead of service times."
    );
}
