//! Fig. 14 — effect of neural-network parameters on throughput and memory.
//!
//! (a)/(b): a 2D convolutional layer with kernel size swept 3..11, without
//! and with input duplication. The paper's shape: throughput *falls* with
//! kernel size without duplication (growing lateral halo traffic) and is
//! *flat* with duplication, whose memory overhead instead grows with the
//! kernel.
//!
//! (c)/(d): a fully connected layer with the hidden width swept, without
//! and with duplication. The paper's shape: high but *constant* lateral
//! traffic and roughly constant throughput without duplication; flat
//! throughput with duplication, with the relative memory overhead of the
//! duplicated input *shrinking* as the weight matrix grows.

use neurocube::SystemConfig;
use neurocube_bench::{csv_f, export_stats, header, run_inference, run_sweep, CsvSink};
use neurocube_fixed::Activation;
use neurocube_nn::{LayerSpec, NetworkSpec, Shape};

fn conv_net(kernel: usize) -> NetworkSpec {
    NetworkSpec::new(
        Shape::new(1, 128, 128),
        vec![LayerSpec::conv(16, kernel, Activation::Tanh)],
    )
    .expect("geometry fits")
}

fn fc_net(hidden: usize) -> NetworkSpec {
    NetworkSpec::new(
        Shape::flat(2048),
        vec![LayerSpec::fc(hidden, Activation::Sigmoid)],
    )
    .expect("geometry fits")
}

fn main() {
    header(
        "Fig. 14(a,b)",
        "conv layer: kernel-size sweep, 128x128 input, 16 maps",
    );
    let mut csv = CsvSink::create(
        "fig14_kernel_sweep",
        &[
            "kernel",
            "nodup_gops",
            "dup_gops",
            "nodup_lateral",
            "dup_lateral",
            "dup_overhead",
        ],
    );
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "kernel", "no-dup GOPs/s", "dup GOPs/s", "no-dup lat%", "dup lat%", "dup mem ovh%"
    );
    // All sweep points run concurrently on the batch runner; the serial
    // re-run of one point checks the bitwise-identity contract end to end.
    let kernels = [3usize, 5, 7, 9, 11];
    let jobs: Vec<_> = kernels
        .iter()
        .flat_map(|&k| {
            [
                (SystemConfig::paper(false), conv_net(k), 14u64),
                (SystemConfig::paper(true), conv_net(k), 14u64),
            ]
        })
        .collect();
    let results = run_sweep(&jobs);
    let serial = run_inference(jobs[0].0.clone(), &jobs[0].1, jobs[0].2);
    assert_eq!(
        serial, results[0].0,
        "batch sweep must be bitwise identical to serial execution"
    );
    println!(
        "(batch sweep verified bitwise-identical to serial on kernel {})",
        kernels[0]
    );
    for (i, &kernel) in kernels.iter().enumerate() {
        let (nodup, nodup_stats) = &results[2 * i];
        let (dup, _) = &results[2 * i + 1];
        export_stats(&format!("fig14_conv_k{kernel}_nodup"), nodup_stats);
        csv.row(&[
            kernel.to_string(),
            csv_f(nodup.throughput_gops()),
            csv_f(dup.throughput_gops()),
            csv_f(nodup.lateral_fraction()),
            csv_f(dup.lateral_fraction()),
            csv_f(dup.memory_overhead()),
        ]);
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>11.1}% {:>11.1}% {:>11.1}%",
            format!("{kernel}x{kernel}"),
            nodup.throughput_gops(),
            dup.throughput_gops(),
            100.0 * nodup.lateral_fraction(),
            100.0 * dup.lateral_fraction(),
            100.0 * dup.memory_overhead()
        );
    }

    header(
        "Fig. 14(c,d)",
        "fully connected layer: hidden-width sweep, 2048 inputs",
    );
    let mut csv = CsvSink::create(
        "fig14_hidden_sweep",
        &[
            "hidden",
            "nodup_gops",
            "dup_gops",
            "nodup_lateral",
            "dup_lateral",
            "dup_overhead",
        ],
    );
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "hidden", "no-dup GOPs/s", "dup GOPs/s", "no-dup lat%", "dup lat%", "dup mem ovh%"
    );
    let hiddens = [512usize, 1024, 2048, 4096];
    let jobs: Vec<_> = hiddens
        .iter()
        .flat_map(|&h| {
            [
                (SystemConfig::paper(false), fc_net(h), 14u64),
                (SystemConfig::paper(true), fc_net(h), 14u64),
            ]
        })
        .collect();
    let results = run_sweep(&jobs);
    for (i, &hidden) in hiddens.iter().enumerate() {
        let (nodup, _) = &results[2 * i];
        let (dup, _) = &results[2 * i + 1];
        csv.row(&[
            hidden.to_string(),
            csv_f(nodup.throughput_gops()),
            csv_f(dup.throughput_gops()),
            csv_f(nodup.lateral_fraction()),
            csv_f(dup.lateral_fraction()),
            csv_f(dup.memory_overhead()),
        ]);
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>11.1}% {:>11.1}% {:>11.1}%",
            hidden,
            nodup.throughput_gops(),
            dup.throughput_gops(),
            100.0 * nodup.lateral_fraction(),
            100.0 * dup.lateral_fraction(),
            100.0 * dup.memory_overhead()
        );
    }
    println!(
        "\npaper shapes: (a) no-dup conv throughput falls with kernel size; (b) dup conv is flat\n\
         with overhead growing in k; (c) no-dup FC lateral traffic is high and constant with\n\
         ~constant throughput; (d) dup FC overhead shrinks as weights dominate."
    );
}
