//! Fig. 12 — Neurocube inference performance on scene labeling.
//!
//! Reproduces the four panels for the 7-layer ConvNN: (a) operations per
//! layer, (b) clock cycles per layer, (c) throughput with and without data
//! duplication, (d) memory requirement and duplication overhead. Also
//! prints the §VI-3 frames-per-second figures for both design nodes.
//!
//! Paper reference points (320×240 input): 132.4 GOPs/s with duplication,
//! 111.4 GOPs/s without; inference 17.52 frames/s at 28 nm and
//! 292.14 frames/s at 15 nm.

use neurocube::SystemConfig;
use neurocube_bench::{csv_f, header, print_layer_panels, run_inference, scene_scale, CsvSink};
use neurocube_nn::workloads;

fn main() {
    let (h, w, label) = scene_scale();
    header(
        "Fig. 12",
        &format!("scene-labeling inference, input {w}x{h} [{label}]"),
    );
    let spec = workloads::scene_labeling(h, w).expect("geometry fits");

    println!("\n--- with data duplication (black bars) ---");
    let dup = run_inference(SystemConfig::paper(true), &spec, 12);
    print_layer_panels(&dup);
    println!(
        "memory: {:.1} MiB stored, {:.1} MiB minimal, {:.1}% duplication overhead",
        dup.memory_bytes as f64 / (1 << 20) as f64,
        dup.memory_minimal_bytes as f64 / (1 << 20) as f64,
        100.0 * dup.memory_overhead()
    );

    println!("\n--- without data duplication (gray bars) ---");
    let nodup = run_inference(SystemConfig::paper(false), &spec, 12);
    print_layer_panels(&nodup);

    let mut csv = CsvSink::create(
        "fig12_layers",
        &[
            "mapping", "layer", "kind", "ops", "cycles", "gops", "lateral", "util",
        ],
    );
    for (mapping, rep) in [("dup", &dup), ("nodup", &nodup)] {
        for l in &rep.layers {
            csv.row(&[
                mapping.to_string(),
                (l.layer_index + 1).to_string(),
                l.kind.to_string(),
                l.ops().to_string(),
                l.cycles.to_string(),
                csv_f(l.throughput_gops()),
                csv_f(l.lateral_fraction()),
                csv_f(l.mac_utilization()),
            ]);
        }
    }

    println!("\n--- summary (paper: 132.4 GOPs/s dup, 111.4 GOPs/s no-dup) ---");
    println!(
        "throughput @5GHz: {:.1} GOPs/s (dup) vs {:.1} GOPs/s (no dup), ratio {:.2}",
        dup.throughput_gops(),
        nodup.throughput_gops(),
        nodup.throughput_gops() / dup.throughput_gops()
    );
    println!(
        "frames/s inference: {:.2} @300MHz 28nm (paper 17.52), {:.2} @5GHz 15nm (paper 292.14)",
        dup.frames_per_second_at(300.0e6),
        dup.frames_per_second_at(5.0e9),
    );
    println!(
        "DRAM energy per frame: {:.2} mJ (dup) vs {:.2} mJ (no dup)",
        dup.dram_energy_j() * 1e3,
        nodup.dram_energy_j() * 1e3
    );
}
