//! Graph-compiler pipelining benchmark: compiled-pipelined execution
//! (the cube programmed once, phases sequenced on-cube by the
//! `GraphSequencer`) vs the per-layer replay baseline (one host
//! programming round-trip per phase), in *simulated* cycles.
//!
//! Workloads: the MNIST MLP and the fig. 14 conv/FC shapes embedded as
//! linear graphs, plus the residual and concat toy DAGs — the graph
//! features the compiler pipelines. Every workload runs with the paper's
//! host programming model attached (`ProgrammingModel::typical`), both
//! ways, and the harness asserts the two modes are **value-exact**
//! (bitwise-equal outputs) before it reports any saving, so a
//! fast-but-wrong pipeline can never post a number. On every
//! *multi-phase* workload the pipelined run must be strictly cheaper —
//! the replay pays the programming charge per phase, the pipeline once
//! per inference.
//!
//! Results go to `BENCH_pipeline.json` at the workspace root (override
//! the path with `NEUROCUBE_BENCH_OUT`). Seed-replayable: every workload
//! pins its parameter seed.

use neurocube::{ProgrammingModel, SystemConfig};
use neurocube_bench::{header, run_graph_mode};
use neurocube_fixed::Activation;
use neurocube_nn::{GraphSpec, LayerSpec, NetworkSpec, Shape};
use std::path::PathBuf;

struct Workload {
    name: &'static str,
    graph: GraphSpec,
    dup: bool,
    seed: u64,
}

fn conv_net(input: usize, maps: usize, kernel: usize) -> NetworkSpec {
    NetworkSpec::new(
        Shape::new(1, input, input),
        vec![LayerSpec::conv(maps, kernel, Activation::Tanh)],
    )
    .expect("geometry fits")
}

fn fc_net(inputs: usize, hidden: usize) -> NetworkSpec {
    NetworkSpec::new(
        Shape::flat(inputs),
        vec![LayerSpec::fc(hidden, Activation::Sigmoid)],
    )
    .expect("geometry fits")
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "mnist_mlp_h64",
            graph: neurocube_nn::workloads::mnist_mlp(64).to_graph(),
            dup: true,
            seed: 7,
        },
        Workload {
            name: "fig14_conv_k3_dup",
            graph: conv_net(128, 16, 3).to_graph(),
            dup: true,
            seed: 14,
        },
        Workload {
            name: "fig14_conv_k7_nodup",
            graph: conv_net(128, 16, 7).to_graph(),
            dup: false,
            seed: 14,
        },
        Workload {
            name: "fig14_fc_2048x1024_dup",
            graph: fc_net(2048, 1024).to_graph(),
            dup: true,
            seed: 14,
        },
        Workload {
            name: "residual_toy",
            graph: neurocube_nn::workloads::residual_toy(),
            dup: true,
            seed: 7,
        },
        Workload {
            name: "concat_toy",
            graph: neurocube_nn::workloads::concat_toy(),
            dup: true,
            seed: 7,
        },
    ]
}

struct Row {
    name: &'static str,
    phases: usize,
    replay_cycles: u64,
    pipelined_cycles: u64,
    replay_programming: u64,
    pipelined_programming: u64,
}

impl Row {
    fn saved_cycles(&self) -> u64 {
        self.replay_cycles - self.pipelined_cycles
    }

    fn speedup(&self) -> f64 {
        self.replay_cycles as f64 / self.pipelined_cycles as f64
    }
}

fn json_escape_free(name: &str) -> &str {
    assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    name
}

fn write_json(rows: &[Row], path: &PathBuf) {
    let mut out = String::from("{\n  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"phases\": {}, \"replay_cycles\": {}, \
             \"pipelined_cycles\": {}, \"replay_programming_cycles\": {}, \
             \"pipelined_programming_cycles\": {}, \"saved_cycles\": {}, \
             \"speedup\": {:.4}}}{}\n",
            json_escape_free(r.name),
            r.phases,
            r.replay_cycles,
            r.pipelined_cycles,
            r.replay_programming,
            r.pipelined_programming,
            r.saved_cycles(),
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let multi: Vec<&Row> = rows.iter().filter(|r| r.phases > 1).collect();
    let min = multi
        .iter()
        .map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "  ],\n  \"min_multiphase_speedup\": {min:.4}\n}}\n"
    ));
    std::fs::write(path, out).expect("write BENCH_pipeline.json");
}

fn main() {
    header(
        "BENCH_pipeline",
        "compiled-pipelined DAG execution vs per-layer replay (simulated cycles)",
    );
    let charge = ProgrammingModel::typical().layer_cycles(16);
    println!("host programming charge: {charge} cycles per program (16 PNGs)");
    println!(
        "{:<24} {:>7} {:>13} {:>13} {:>11} {:>9}",
        "workload", "phases", "replay cyc", "pipeline cyc", "saved cyc", "speedup"
    );
    let mut rows = Vec::new();
    for w in workloads() {
        let mut cfg = SystemConfig::paper(w.dup);
        cfg.programming = Some(ProgrammingModel::typical());
        let piped = run_graph_mode(cfg.clone(), &w.graph, w.seed, Some(true), true);
        let replay = run_graph_mode(cfg, &w.graph, w.seed, Some(true), false);
        assert_eq!(
            piped.output.as_slice(),
            replay.output.as_slice(),
            "{}: pipelined run diverged from the replay baseline",
            w.name
        );
        let phases = piped.report.layers.len();
        assert_eq!(phases, replay.report.layers.len());
        let row = Row {
            name: w.name,
            phases,
            replay_cycles: replay.report.total_cycles(),
            pipelined_cycles: piped.report.total_cycles(),
            replay_programming: charge * phases as u64,
            pipelined_programming: charge,
        };
        if phases > 1 {
            assert!(
                row.pipelined_cycles < row.replay_cycles,
                "{}: pipelined ({}) must be strictly below replay ({}) on a \
                 multi-phase workload",
                w.name,
                row.pipelined_cycles,
                row.replay_cycles
            );
        }
        println!(
            "{:<24} {:>7} {:>13} {:>13} {:>11} {:>8.3}x",
            w.name,
            row.phases,
            row.replay_cycles,
            row.pipelined_cycles,
            row.saved_cycles(),
            row.speedup()
        );
        rows.push(row);
    }

    println!(
        "\nreplay pays the host programming charge per phase; the pipeline pays it \
         once per inference\n(single-phase workloads are the break-even control: \
         one program either way)."
    );

    let out = std::env::var_os("NEUROCUBE_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_pipeline.json")
        });
    write_json(&rows, &out);
    println!("wrote {}", out.display());
}
