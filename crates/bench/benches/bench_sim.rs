//! Simulator wall-clock benchmark: event-horizon fast-forwarding vs the
//! naive per-cycle loop, on the Fig. 14/15 workload shapes.
//!
//! Each workload runs twice on identical cubes — once with skipping forced
//! off (the oracle) and once forced on — and the harness asserts the two
//! runs are bitwise identical (same `RunReport`, same statistics
//! registry) before it reports any speedup, so a fast-but-wrong simulator
//! can never post a number.
//!
//! Results go to `BENCH_sim.json` at the workspace root (override the path
//! with `NEUROCUBE_BENCH_OUT`). Two speedups are reported per workload:
//! `speedup` (skip vs naive, same binary — the event-horizon win proper)
//! and `speedup_vs_seed` (skip vs the pinned PR 2 baseline's naive loop —
//! the simulator's wall-clock trajectory across PRs, which also captures
//! the hot-path work skipping rode in with). Setting
//! `NEUROCUBE_BENCH_MIN_SPEEDUP=<x>` turns the run into a gate: the
//! process exits non-zero if the sweep's geomean `speedup_vs_seed` falls
//! below `x` (the `ci.sh --bench` regression guard).

use neurocube::SystemConfig;
use neurocube_bench::{header, run_inference_faulty, run_inference_mode, SkipTelemetry};
use neurocube_fault::FaultConfig;
use neurocube_fixed::Activation;
use neurocube_nn::{LayerSpec, NetworkSpec, Shape};
use std::path::PathBuf;
use std::time::Instant;

struct Workload {
    name: &'static str,
    cfg: SystemConfig,
    spec: NetworkSpec,
    seed: u64,
}

fn conv_net(input: usize, maps: usize, kernel: usize) -> NetworkSpec {
    NetworkSpec::new(
        Shape::new(1, input, input),
        vec![LayerSpec::conv(maps, kernel, Activation::Tanh)],
    )
    .expect("geometry fits")
}

fn fc_net(inputs: usize, hidden: usize) -> NetworkSpec {
    NetworkSpec::new(
        Shape::flat(inputs),
        vec![LayerSpec::fc(hidden, Activation::Sigmoid)],
    )
    .expect("geometry fits")
}

/// The Fig. 14/15 shapes the sweeps spend their wall-clock on: the conv
/// kernel sweep's end points (with and without duplication), the FC
/// hidden-width sweep, the Fig. 15 channel-count extremes and the DDR3
/// baseline whose two injection points leave the fabric mostly idle —
/// the workload class event-horizon skipping exists for.
fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "fig14_conv_k3_dup",
            cfg: SystemConfig::paper(true),
            spec: conv_net(128, 16, 3),
            seed: 14,
        },
        Workload {
            name: "fig14_conv_k7_nodup",
            cfg: SystemConfig::paper(false),
            spec: conv_net(128, 16, 7),
            seed: 14,
        },
        Workload {
            name: "fig14_fc_2048x1024_dup",
            cfg: SystemConfig::paper(true),
            spec: fc_net(2048, 1024),
            seed: 14,
        },
        Workload {
            name: "fig15_conv96_hmc16",
            cfg: SystemConfig::hmc_with_channels(16),
            spec: conv_net(96, 16, 7),
            seed: 15,
        },
        Workload {
            name: "fig15_conv96_ddr3",
            cfg: SystemConfig::ddr3(),
            spec: conv_net(96, 16, 7),
            seed: 15,
        },
    ]
}

/// Naive-loop throughput (simulated cycles per host-second) of the PR 2
/// baseline, measured with `seed_baseline.rs` (this harness's workload
/// table run through `run_inference`) on the reference container at
/// commit `721389d` — before the event-horizon mechanism and the
/// hot-path work landed. `speedup_vs_seed` tracks the simulator's
/// wall-clock trajectory across PRs against these pinned constants;
/// re-measure and update them whenever the reference hardware changes.
const SEED_COMMIT: &str = "721389d";
const SEED_NAIVE_CPS: [(&str, f64); 5] = [
    ("fig14_conv_k3_dup", 126_821.0),
    ("fig14_conv_k7_nodup", 99_409.0),
    ("fig14_fc_2048x1024_dup", 143_770.0),
    ("fig15_conv96_hmc16", 97_230.0),
    ("fig15_conv96_ddr3", 312_698.0),
];

struct Row {
    name: &'static str,
    cycles: u64,
    naive_secs: f64,
    skip_secs: f64,
    telemetry: SkipTelemetry,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive_secs / self.skip_secs
    }

    fn skip_cps(&self) -> f64 {
        self.cycles as f64 / self.skip_secs
    }

    fn speedup_vs_seed(&self) -> f64 {
        let (_, seed_cps) = SEED_NAIVE_CPS
            .iter()
            .find(|(n, _)| *n == self.name)
            .expect("workload has a seed baseline");
        self.skip_cps() / seed_cps
    }
}

fn timed(
    w: &Workload,
    skip: bool,
) -> (
    f64,
    neurocube::RunReport,
    neurocube_sim::StatsRegistry,
    SkipTelemetry,
) {
    let start = Instant::now();
    let (report, stats, telemetry) = run_inference_mode(w.cfg.clone(), &w.spec, w.seed, Some(skip));
    (start.elapsed().as_secs_f64(), report, stats, telemetry)
}

fn json_escape_free(name: &str) -> &str {
    // Workload names are static identifiers; keep the exporter honest.
    assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    name
}

fn geomean(rows: &[Row], f: impl Fn(&Row) -> f64) -> f64 {
    (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
}

fn write_json(rows: &[Row], path: &PathBuf) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"seed_commit\": \"{SEED_COMMIT}\",\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"simulated_cycles\": {}, \"naive_host_secs\": {:.4}, \
             \"skip_host_secs\": {:.4}, \"naive_cycles_per_sec\": {:.0}, \
             \"skip_cycles_per_sec\": {:.0}, \"speedup\": {:.2}, \
             \"speedup_vs_seed\": {:.2}, \
             \"skipped_cycles\": {}, \"horizon_jumps\": {}}}{}\n",
            json_escape_free(r.name),
            r.cycles,
            r.naive_secs,
            r.skip_secs,
            r.cycles as f64 / r.naive_secs,
            r.skip_cps(),
            r.speedup(),
            r.speedup_vs_seed(),
            r.telemetry.skipped_cycles,
            r.telemetry.horizon_jumps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let min = rows.iter().map(Row::speedup).fold(f64::INFINITY, f64::min);
    let min_seed = rows
        .iter()
        .map(Row::speedup_vs_seed)
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "  ],\n  \"min_speedup\": {min:.2},\n  \"geomean_speedup\": {:.2},\n  \
         \"min_speedup_vs_seed\": {min_seed:.2},\n  \"geomean_speedup_vs_seed\": {:.2}\n}}\n",
        geomean(rows, Row::speedup),
        geomean(rows, Row::speedup_vs_seed),
    ));
    std::fs::write(path, out).expect("write BENCH_sim.json");
}

fn main() {
    header(
        "BENCH_sim",
        "event-horizon fast-forward vs naive per-cycle loop (Fig. 14/15 workloads)",
    );
    println!(
        "{:<24} {:>12} {:>10} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "workload",
        "sim cycles",
        "naive s",
        "skip s",
        "naive c/s",
        "skip c/s",
        "speedup",
        "vs seed"
    );
    let mut rows = Vec::new();
    for (i, w) in workloads().iter().enumerate() {
        let (naive_secs, naive_report, naive_stats, naive_tel) = timed(w, false);
        let (skip_secs, skip_report, skip_stats, skip_tel) = timed(w, true);
        assert_eq!(
            naive_tel,
            SkipTelemetry::default(),
            "{}: the oracle must not fast-forward",
            w.name
        );
        assert!(
            skip_tel.horizon_jumps > 0,
            "{}: fast mode never jumped — the workload no longer exercises skipping",
            w.name
        );
        assert_eq!(
            naive_report, skip_report,
            "{}: fast-forward run diverged from the oracle's report",
            w.name
        );
        assert_eq!(
            naive_stats, skip_stats,
            "{}: fast-forward run diverged from the oracle's statistics",
            w.name
        );
        if i == 0 {
            // A zero-rate fault config must be invisible: same report,
            // same registry, no `fault` section — the injector normalizes
            // itself away, so sweep point 0 of the fault sweep is the
            // fault-free simulator, bit for bit.
            let zero = run_inference_faulty(
                w.cfg.clone(),
                &w.spec,
                w.seed,
                Some(FaultConfig::uniform(w.seed, 0.0)),
            );
            assert_eq!(
                zero.report, skip_report,
                "{}: zero-fault-rate run diverged from the no-injector report",
                w.name
            );
            assert_eq!(
                zero.stats, skip_stats,
                "{}: zero-fault-rate run diverged from the no-injector statistics",
                w.name
            );
            assert!(zero.report.fault.is_none());
            println!("(zero-fault-rate run verified bitwise-identical to the no-injector build)");
        }
        let cycles = naive_report.total_cycles();
        let row = Row {
            name: w.name,
            cycles,
            naive_secs,
            skip_secs,
            telemetry: skip_tel,
        };
        println!(
            "{:<24} {:>12} {:>10.3} {:>10.3} {:>12.0} {:>12.0} {:>7.2}x {:>7.2}x",
            w.name,
            cycles,
            naive_secs,
            skip_secs,
            cycles as f64 / naive_secs,
            row.skip_cps(),
            row.speedup(),
            row.speedup_vs_seed()
        );
        rows.push(row);
    }

    let min = rows.iter().map(Row::speedup).fold(f64::INFINITY, f64::min);
    let min_seed = rows
        .iter()
        .map(Row::speedup_vs_seed)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nskip vs naive (same binary): min {min:.2}x, geomean {:.2}x \
         (both modes bitwise identical)",
        geomean(&rows, Row::speedup)
    );
    println!(
        "skip vs seed naive loop ({SEED_COMMIT}): min {min_seed:.2}x, geomean {:.2}x",
        geomean(&rows, Row::speedup_vs_seed)
    );

    let out = std::env::var_os("NEUROCUBE_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_sim.json")
        });
    write_json(&rows, &out);
    println!("wrote {}", out.display());

    if let Some(gate) = neurocube_sim::env_f64("NEUROCUBE_BENCH_MIN_SPEEDUP") {
        // The gate compares the skipping loop against the *seed* naive
        // loop's pinned throughput, not against the same-binary naive
        // run: on the saturated fig. 14 shapes the two loops in one
        // binary are within noise of each other by construction (almost
        // no fully-quiescent cycles to jump), so the regenerable
        // regression signal is absolute throughput against the pinned
        // baseline. It gates the geometric mean, not the minimum: the
        // short workloads run under a second and single-workload
        // wall-clock jitters ±15% on shared hardware, while the sweep
        // aggregate is stable.
        let gm = geomean(&rows, Row::speedup_vs_seed);
        assert!(
            gm >= gate,
            "simulator throughput regression: geomean speedup vs seed {gm:.2}x \
             < required {gate:.2}x (per-workload: min {min_seed:.2}x)"
        );
        println!("speedup gate passed (geomean vs seed {gm:.2}x >= {gate:.2}x)");
    }
}
