//! Simulator wall-clock benchmark: event-horizon fast-forwarding vs the
//! naive per-cycle loop, on the Fig. 14/15 workload shapes.
//!
//! Each workload runs twice on identical cubes — once with skipping forced
//! off (the oracle) and once forced on — and the harness asserts the two
//! runs are bitwise identical (same `RunReport`, same statistics
//! registry) before it reports any speedup, so a fast-but-wrong simulator
//! can never post a number.
//!
//! Results go to `BENCH_sim.json` at the workspace root (override the path
//! with `NEUROCUBE_BENCH_OUT`). Two speedups are reported per workload:
//! `speedup` (skip vs naive, same binary — the event-horizon win proper)
//! and `speedup_vs_seed` (skip vs the pinned PR 2 baseline's naive loop —
//! the simulator's wall-clock trajectory across PRs, which also captures
//! the hot-path work skipping rode in with). Setting
//! `NEUROCUBE_BENCH_MIN_SPEEDUP=<x>` turns the run into a gate: the
//! process exits non-zero if the sweep's geomean `speedup_vs_seed` falls
//! below `x` (the `ci.sh --bench` regression guard).

use neurocube_bench::{
    bench_workloads, header, run_inference_faulty, run_inference_variant,
    BenchWorkload as Workload, SkipTelemetry,
};
use neurocube_fault::FaultConfig;
use std::path::PathBuf;
use std::time::Instant;

/// Naive-loop throughput (simulated cycles per host-second) of the PR 2
/// baseline, measured with `seed_baseline.rs` (this harness's workload
/// table run through `run_inference`) on the reference container at
/// commit `721389d` — before the event-horizon mechanism and the
/// hot-path work landed. `speedup_vs_seed` tracks the simulator's
/// wall-clock trajectory across PRs against these pinned constants;
/// re-measure and update them whenever the reference hardware changes.
const SEED_COMMIT: &str = "721389d";
const SEED_NAIVE_CPS: [(&str, f64); 5] = [
    ("fig14_conv_k3_dup", 126_821.0),
    ("fig14_conv_k7_nodup", 99_409.0),
    ("fig14_fc_2048x1024_dup", 143_770.0),
    ("fig15_conv96_hmc16", 97_230.0),
    ("fig15_conv96_ddr3", 312_698.0),
];

struct Row {
    name: &'static str,
    cycles: u64,
    naive_secs: f64,
    skip_secs: f64,
    scalar_secs: f64,
    telemetry: SkipTelemetry,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive_secs / self.skip_secs
    }

    fn skip_cps(&self) -> f64 {
        self.cycles as f64 / self.skip_secs
    }

    fn scalar_cps(&self) -> f64 {
        self.cycles as f64 / self.scalar_secs
    }

    fn speedup_vs_seed(&self) -> f64 {
        let (_, seed_cps) = SEED_NAIVE_CPS
            .iter()
            .find(|(n, _)| *n == self.name)
            .expect("workload has a seed baseline");
        self.skip_cps() / seed_cps
    }
}

/// Timing repetitions per mode; the reported time is the *fastest* rep.
/// Single sub-second runs jitter ±15% and worse on shared hardware,
/// which swamps the real skip-vs-naive margin on the saturated shapes;
/// the minimum over a few reps is the standard noise-robust estimator of
/// the achievable time. `NEUROCUBE_BENCH_REPS` overrides (min 1).
fn reps() -> u32 {
    neurocube_sim::env_u64("NEUROCUBE_BENCH_REPS").map_or(3, |v| (v as u32).max(1))
}

/// Runs `w` at least `reps()` times in one mode (`simd = None` is the
/// process default, i.e. the SoA path) and returns the fastest wall-clock
/// time plus the (deterministic, rep-invariant) observables of the last
/// rep. Short workloads get extra draws: a 0.4 s run needs more samples
/// than a 20 s run for the minimum to converge, so the loop keeps going
/// until the mode has accumulated ~4 s of measurement (capped at three
/// times the base rep count) — without this, the sub-second workloads'
/// skip-vs-naive ratios swing ±15 % between otherwise identical runs.
fn timed(
    w: &Workload,
    skip: bool,
    simd: Option<bool>,
) -> (
    f64,
    neurocube::RunReport,
    neurocube_sim::StatsRegistry,
    SkipTelemetry,
) {
    let base = reps();
    let cap = base.saturating_mul(3);
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut done = 0u32;
    let mut out = None;
    while done < base || (total < 4.0 && done < cap) {
        let start = Instant::now();
        let (report, stats, telemetry) =
            run_inference_variant(w.cfg.clone(), &w.spec, w.seed, Some(skip), simd);
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        total += secs;
        done += 1;
        out = Some((report, stats, telemetry));
    }
    let (report, stats, telemetry) = out.expect("at least one rep");
    (best, report, stats, telemetry)
}

fn json_escape_free(name: &str) -> &str {
    // Workload names are static identifiers; keep the exporter honest.
    assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    name
}

fn geomean(rows: &[Row], f: impl Fn(&Row) -> f64) -> f64 {
    (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
}

fn write_json(rows: &[Row], path: &PathBuf) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"seed_commit\": \"{SEED_COMMIT}\",\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"simulated_cycles\": {}, \"naive_host_secs\": {:.4}, \
             \"skip_host_secs\": {:.4}, \"naive_cycles_per_sec\": {:.0}, \
             \"scalar_cycles_per_sec\": {:.0}, \
             \"skip_cycles_per_sec\": {:.0}, \"speedup\": {:.2}, \
             \"soa_speedup\": {:.2}, \"speedup_vs_seed\": {:.2}, \
             \"skipped_cycles\": {}, \"horizon_jumps\": {}}}{}\n",
            json_escape_free(r.name),
            r.cycles,
            r.naive_secs,
            r.skip_secs,
            r.cycles as f64 / r.naive_secs,
            r.scalar_cps(),
            r.skip_cps(),
            r.speedup(),
            r.skip_cps() / r.scalar_cps(),
            r.speedup_vs_seed(),
            r.telemetry.skipped_cycles,
            r.telemetry.horizon_jumps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let min = rows.iter().map(Row::speedup).fold(f64::INFINITY, f64::min);
    let min_seed = rows
        .iter()
        .map(Row::speedup_vs_seed)
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "  ],\n  \"min_speedup\": {min:.2},\n  \"geomean_speedup\": {:.2},\n  \
         \"min_speedup_vs_seed\": {min_seed:.2},\n  \"geomean_speedup_vs_seed\": {:.2}\n}}\n",
        geomean(rows, Row::speedup),
        geomean(rows, Row::speedup_vs_seed),
    ));
    std::fs::write(path, out).expect("write BENCH_sim.json");
}

fn main() {
    header(
        "BENCH_sim",
        "event-horizon fast-forward vs naive per-cycle loop (Fig. 14/15 workloads)",
    );
    println!(
        "{:<24} {:>12} {:>10} {:>10} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "workload",
        "sim cycles",
        "naive s",
        "skip s",
        "naive c/s",
        "scalar c/s",
        "skip c/s",
        "speedup",
        "vs seed"
    );
    let mut rows = Vec::new();
    for (i, w) in bench_workloads().iter().enumerate() {
        let (naive_secs, naive_report, naive_stats, naive_tel) = timed(w, false, None);
        let (skip_secs, skip_report, skip_stats, skip_tel) = timed(w, true, None);
        // Scalar column: the per-lane MacUnit oracle (NEUROCUBE_NO_SIMD's
        // path) through the same skipping loop — the SoA datapath win is
        // skip_cps / scalar_cps, measured in one binary.
        let (scalar_secs, scalar_report, scalar_stats, _) = timed(w, true, Some(false));
        assert_eq!(
            naive_tel,
            SkipTelemetry::default(),
            "{}: the oracle must not fast-forward",
            w.name
        );
        assert!(
            skip_tel.horizon_jumps > 0,
            "{}: fast mode never jumped — the workload no longer exercises skipping",
            w.name
        );
        assert_eq!(
            naive_report, skip_report,
            "{}: fast-forward run diverged from the oracle's report",
            w.name
        );
        assert_eq!(
            naive_stats, skip_stats,
            "{}: fast-forward run diverged from the oracle's statistics",
            w.name
        );
        assert_eq!(
            scalar_report, skip_report,
            "{}: scalar-datapath run diverged from the SoA report",
            w.name
        );
        assert_eq!(
            scalar_stats, skip_stats,
            "{}: scalar-datapath run diverged from the SoA statistics",
            w.name
        );
        if i == 0 {
            // A zero-rate fault config must be invisible: same report,
            // same registry, no `fault` section — the injector normalizes
            // itself away, so sweep point 0 of the fault sweep is the
            // fault-free simulator, bit for bit.
            let zero = run_inference_faulty(
                w.cfg.clone(),
                &w.spec,
                w.seed,
                Some(FaultConfig::uniform(w.seed, 0.0)),
            );
            assert_eq!(
                zero.report, skip_report,
                "{}: zero-fault-rate run diverged from the no-injector report",
                w.name
            );
            assert_eq!(
                zero.stats, skip_stats,
                "{}: zero-fault-rate run diverged from the no-injector statistics",
                w.name
            );
            assert!(zero.report.fault.is_none());
            println!("(zero-fault-rate run verified bitwise-identical to the no-injector build)");
        }
        let cycles = naive_report.total_cycles();
        let row = Row {
            name: w.name,
            cycles,
            naive_secs,
            skip_secs,
            scalar_secs,
            telemetry: skip_tel,
        };
        println!(
            "{:<24} {:>12} {:>10.3} {:>10.3} {:>12.0} {:>12.0} {:>12.0} {:>7.2}x {:>7.2}x",
            w.name,
            cycles,
            naive_secs,
            skip_secs,
            cycles as f64 / naive_secs,
            row.scalar_cps(),
            row.skip_cps(),
            row.speedup(),
            row.speedup_vs_seed()
        );
        rows.push(row);
    }

    let min = rows.iter().map(Row::speedup).fold(f64::INFINITY, f64::min);
    let min_seed = rows
        .iter()
        .map(Row::speedup_vs_seed)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nskip vs naive (same binary): min {min:.2}x, geomean {:.2}x \
         (both modes bitwise identical)",
        geomean(&rows, Row::speedup)
    );
    println!(
        "skip vs seed naive loop ({SEED_COMMIT}): min {min_seed:.2}x, geomean {:.2}x",
        geomean(&rows, Row::speedup_vs_seed)
    );

    let out = std::env::var_os("NEUROCUBE_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_sim.json")
        });
    write_json(&rows, &out);
    println!("wrote {}", out.display());

    if let Some(gate) = neurocube_sim::env_f64("NEUROCUBE_BENCH_MIN_SPEEDUP") {
        // The gate compares the skipping loop against the *seed* naive
        // loop's pinned throughput, not against the same-binary naive
        // run: on the saturated fig. 14 shapes the two loops in one
        // binary are within noise of each other by construction (almost
        // no fully-quiescent cycles to jump), so the regenerable
        // regression signal is absolute throughput against the pinned
        // baseline. It gates the geometric mean, not the minimum: the
        // short workloads run under a second and single-workload
        // wall-clock jitters ±15% on shared hardware, while the sweep
        // aggregate is stable.
        let gm = geomean(&rows, Row::speedup_vs_seed);
        assert!(
            gm >= gate,
            "simulator throughput regression: geomean speedup vs seed {gm:.2}x \
             < required {gate:.2}x (per-workload: min {min_seed:.2}x)"
        );
        println!("speedup gate passed (geomean vs seed {gm:.2}x >= {gate:.2}x)");
        // Skipping must not lose to the naive loop in the same binary. On
        // the saturated fig. 14/15 shapes it recovers almost no cycles
        // (conv_k7: 567 of 1.06M) while still paying the spaced-out
        // horizon probes, so its true per-workload ratio hovers at ~1.0
        // — and multi-second runs on this hardware draw ±10% even as a
        // best-of-N, so a tight per-workload floor would flake on timer
        // jitter alone. The floor exists to catch a real probe-cost
        // pathology (the pre-backoff regression was 20-30%), so the
        // enforced contract is: bounded overhead everywhere (min >= 0.90)
        // and a net win across the sweep (geomean >= 1.0, carried by the
        // idle-heavy shapes the mechanism exists for, with ~15% margin).
        let gm_naive = geomean(&rows, Row::speedup);
        assert!(
            min >= 0.90,
            "skip-mode probe overhead regression: min skip-vs-naive {min:.2}x < 0.90x \
             (raise NEUROCUBE_BENCH_REPS to rule out timing noise)"
        );
        assert!(
            gm_naive >= 1.0,
            "skip-mode loses to the naive loop across the sweep: \
             geomean skip-vs-naive {gm_naive:.2}x < 1.0x"
        );
        println!(
            "skip-vs-naive floor passed (min {min:.2}x >= 0.90x, geomean {gm_naive:.2}x >= 1.0x)"
        );
    }
}
