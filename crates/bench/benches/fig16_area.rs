//! Fig. 16 / §VII "Area analysis" — logic-die floorplan accounting.

use neurocube_bench::header;
use neurocube_power::area::{FloorplanReport, CORES, LOGIC_DIE_MM2};
use neurocube_power::table2::ProcessNode;

fn main() {
    header(
        "Fig. 16",
        "logic-die floorplan accounting (one core per vault)",
    );
    for node in [ProcessNode::Cmos28, ProcessNode::FinFet15] {
        let r = FloorplanReport::new(node);
        println!("[{}]", node.name());
        println!(
            "  PE + router cells: {:.4} mm²  (placed at 70% util: {:.4} mm², {:.0} µm square)",
            r.pe_router_mm2,
            r.pe_router_placed_mm2,
            r.pe_router_side_um()
        );
        println!(
            "  vault controller [24]: {:.4} mm², TSV field (116 @ 4 µm pitch): {:.4} mm²",
            r.vault_controller_mm2, r.tsv_mm2
        );
        println!(
            "  one core: {:.4} mm²; {CORES} cores: {:.3} mm² = {:.1}% of the {LOGIC_DIE_MM2} mm² logic die -> fits: {}",
            r.core_mm2(),
            r.total_mm2(),
            100.0 * r.die_fraction(),
            r.fits_logic_die()
        );
    }
    println!(
        "\npaper: PE+router in 513µm x 513µm at 28 nm; 16 cores fit the 68 mm² HMC logic die."
    );
}
