//! Ablation: MAC accumulator width (`DESIGN.md` design-decision study).
//!
//! Table II specifies a 16-bit MAC datapath but not the accumulator
//! register width. This harness quantifies the choice: a 32-bit internal
//! accumulator (our default, renormalized once per neuron) versus per-step
//! 16-bit saturation, on the scene-labeling network — numerical divergence
//! and saturation incidence, with identical cycle counts (the datapath
//! timing does not depend on the accumulator).

use neurocube::{Neurocube, SystemConfig};
use neurocube_bench::header;
use neurocube_fixed::AccumulatorWidth;
use neurocube_nn::{workloads, Executor, Tensor};

fn main() {
    header(
        "Ablation",
        "MAC accumulator width: Wide32 vs Narrow16 (scene labeling 80x60)",
    );
    let spec = workloads::scene_labeling(60, 80).expect("geometry fits");
    let params = spec.init_params(77, 0.2);
    let input = workloads::synthetic_scene(9, 60, 80);

    let wide = Executor::with_accumulator(spec.clone(), params.clone(), AccumulatorWidth::Wide32);
    let narrow =
        Executor::with_accumulator(spec.clone(), params.clone(), AccumulatorWidth::Narrow16);
    let out_w = wide.forward(&input);
    let out_n = narrow.forward(&input);

    println!(
        "{:<6} {:>12} {:>14} {:>16}",
        "layer", "neurons", "mean |Δ|", "max |Δ| (Q8.8)"
    );
    for (i, (w, n)) in out_w.iter().zip(&out_n).enumerate() {
        let diffs: Vec<f64> = w
            .as_slice()
            .iter()
            .zip(n.as_slice())
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .collect();
        let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
        let max = diffs.iter().copied().fold(0.0f64, f64::max);
        println!("L{:<5} {:>12} {:>14.5} {:>16.3}", i + 1, w.len(), mean, max);
    }

    let agree = out_w.last().unwrap() == out_n.last().unwrap();
    println!(
        "\nfinal classifier outputs identical: {agree} (divergence grows with dot-product\n\
         length; the wide accumulator defers truncation to one renormalization per neuron\n\
         and avoids early saturation on the 3,872-connection FC layer)"
    );

    // Timing is accumulator-independent: identical cycle counts.
    let mut cycles = Vec::new();
    for width in [AccumulatorWidth::Wide32, AccumulatorWidth::Narrow16] {
        let mut cfg = SystemConfig::paper(true);
        cfg.accumulator = width;
        let mut cube = Neurocube::new(cfg);
        let loaded = cube.load(spec.clone(), params.clone());
        let (_, report) = cube.run_inference(&loaded, &Tensor::zeros(3, 60, 80));
        cycles.push(report.total_cycles());
    }
    println!(
        "cycle counts: Wide32 {} vs Narrow16 {} (identical: {})",
        cycles[0],
        cycles[1],
        cycles[0] == cycles[1]
    );
}
