//! Table III — recent hardware platforms for neuro-inspired algorithms,
//! with this reproduction's *measured* throughput inserted as the "This
//! work" rows.
//!
//! Paper's headline: ~4× computing power-efficiency (GOPs/s/W) over the
//! reported GPU implementation, with GPU-like programmability.

use neurocube::SystemConfig;
use neurocube_bench::{header, run_inference, scene_scale};
use neurocube_nn::workloads;
use neurocube_power::efficiency::{
    gpu_efficiency_improvement, neurocube_rows, neurocube_system_power_w, PUBLISHED_PLATFORMS,
};
use neurocube_power::table2::ProcessNode;

fn main() {
    let (h, w, label) = scene_scale();
    header(
        "Table III",
        &format!("platform comparison; measured on scene labeling {w}x{h} [{label}]"),
    );
    let spec = workloads::scene_labeling(h, w).expect("geometry fits");
    let report = run_inference(SystemConfig::paper(true), &spec, 3);
    let measured = report.throughput_gops();

    println!(
        "{:<22} {:>4} {:>5} {:>6} {:>10} {:>9} {:>9} {:>10}",
        "platform", "year", "prog", "bits", "GOPs/s", "DRAM", "power W", "GOPs/s/W"
    );
    let rows = neurocube_rows(measured);
    for r in PUBLISHED_PLATFORMS.iter().take(2) {
        println!("{r}");
    }
    for r in &rows {
        println!("{r}");
    }
    for r in PUBLISHED_PLATFORMS.iter().skip(2) {
        println!("{r}");
    }

    println!(
        "\nmeasured Neurocube throughput @5GHz: {:.1} GOPs/s (paper: 132.4)",
        measured
    );
    println!(
        "system power with memory: {:.2} W (28nm), {:.2} W (15nm) — paper: 1.86 / 21.50",
        neurocube_system_power_w(ProcessNode::Cmos28),
        neurocube_system_power_w(ProcessNode::FinFet15)
    );
    println!(
        "efficiency improvement over GTX 780: {:.1}x (paper projects ~4x)",
        gpu_efficiency_improvement(measured)
    );
    println!(
        "note: ASIC rows ([4][7][8][6]) exclude DRAM power/latency; the paper argues the\n\
         comparison should include it, which is what the Neurocube rows do."
    );
}
