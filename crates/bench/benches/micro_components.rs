//! Criterion micro-benchmarks for the individual substrates: fixed-point
//! arithmetic, activation LUTs, NoC routing, DRAM channel streaming, PNG
//! address generation and the functional executor.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use neurocube_dram::{Channel, ChannelConfig, MemoryConfig, Request, RequestKind, Storage};
use neurocube_fixed::{Activation, ActivationLut, MacUnit, Q88};
use neurocube_nn::{workloads, Executor, Tensor};
use neurocube_noc::{Network, Packet, PacketKind, Topology};
use neurocube_png::layout::NetworkLayout;
use neurocube_png::schedule::OperandStream;
use neurocube_png::{compile_layer, Mapping};
use std::hint::black_box;
use std::sync::Arc;

fn bench_fixed(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed");
    let a = Q88::from_f64(1.217);
    let b = Q88::from_f64(-0.493);
    g.bench_function("q88_mul", |bench| {
        bench.iter(|| black_box(a) * black_box(b))
    });
    g.bench_function("mac_accumulate_64", |bench| {
        bench.iter(|| {
            let mut mac = MacUnit::new(Default::default());
            for _ in 0..64 {
                mac.accumulate(black_box(a), black_box(b));
            }
            mac.result()
        })
    });
    let lut = ActivationLut::new(Activation::Sigmoid);
    g.bench_function("lut_apply", |bench| bench.iter(|| lut.apply(black_box(a))));
    g.finish();
}

fn bench_noc(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("mesh_1000_packets_corner_to_corner", |bench| {
        bench.iter(|| {
            let mut net = Network::new(Topology::mesh4x4());
            let pkt = Packet {
                dst: 15,
                src: 0,
                mac_id: 0,
                op_id: 0,
                kind: PacketKind::State,
                data: 1,
            };
            let mut sent = 0u32;
            let mut recv = 0u32;
            let mut now = 0u64;
            while recv < 1000 {
                if sent < 1000 && net.try_inject_from_mem(0, pkt, now) {
                    sent += 1;
                }
                net.tick(now);
                if net.pop_for_pe(15, now).is_some() {
                    recv += 1;
                }
                now += 1;
            }
            now
        })
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Bytes(4 * 512));
    g.bench_function("hmc_channel_stream_512_words", |bench| {
        bench.iter(|| {
            let mut ch = Channel::new(ChannelConfig::hmc_int());
            let mut storage = Storage::new();
            let mut issued = 0u64;
            let mut done = 0u32;
            let mut now = 0u64;
            while done < 512 {
                while issued < 512
                    && ch.try_enqueue(Request {
                        addr: issued * 4,
                        tag: issued,
                        kind: RequestKind::Read,
                    })
                {
                    issued += 1;
                }
                if ch.tick(now, &mut storage).is_some() {
                    done += 1;
                }
                now += 1;
            }
            now
        })
    });
    g.finish();
}

fn bench_png(c: &mut Criterion) {
    let mut g = c.benchmark_group("png");
    let net = workloads::scene_labeling(60, 80).expect("geometry fits");
    let map = MemoryConfig::hmc_int().address_map();
    let layout = NetworkLayout::build(&net, 4, 4, true, 16, &map);
    let prog = compile_layer(&net, &layout, 0, Mapping::paper(true));
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("operand_stream_10k_events", |bench| {
        bench.iter(|| {
            let mut s = OperandStream::new(Arc::clone(&prog), 5);
            let mut n = 0u32;
            while n < 10_000 {
                if s.next().is_none() {
                    break;
                }
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_functional(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional");
    let spec = workloads::tiny_convnet();
    let params = spec.init_params(1, 0.25);
    let exec = Executor::new(spec, params);
    let input = Tensor::zeros(1, 12, 12);
    g.bench_function("tiny_convnet_forward", |bench| {
        bench.iter(|| exec.forward(black_box(&input)))
    });
    g.finish();
}

fn bench_cycle_sim(c: &mut Criterion) {
    use neurocube::{Neurocube, SystemConfig};
    let mut g = c.benchmark_group("cycle_sim");
    g.sample_size(10);
    g.bench_function("tiny_convnet_full_inference", |bench| {
        let spec = workloads::tiny_convnet();
        let params = spec.init_params(1, 0.25);
        let input = Tensor::zeros(1, 12, 12);
        bench.iter(|| {
            let mut cube = Neurocube::new(SystemConfig::paper(true));
            let loaded = cube.load(spec.clone(), params.clone());
            cube.run_inference(&loaded, &input)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fixed,
    bench_noc,
    bench_dram,
    bench_png,
    bench_functional,
    bench_cycle_sim
);
criterion_main!(benches);
