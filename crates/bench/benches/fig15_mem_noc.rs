//! Fig. 15 — memory concurrency and NoC topology comparisons.
//!
//! (a) HMC vs DDR3: the same conv layer on memories with 2/4/8/16 channels
//! (per-channel HMC bandwidth) plus the 2-channel DDR3 baseline. The paper
//! shows DDR3 far slower despite its higher per-channel peak: with only two
//! injection points, "data traffic on the 2D NoC is a major bottleneck"
//! and more, slower channels win.
//!
//! (b) 2D mesh vs fully connected NoC: "there is no throughput degradation
//! from the locally connected layer to the fully connected layer since
//! there is no lateral traffic" on the fully connected fabric.

use neurocube::SystemConfig;
use neurocube_bench::{csv_f, export_stats, header, run_sweep, CsvSink};
use neurocube_fixed::Activation;
use neurocube_nn::{LayerSpec, NetworkSpec, Shape};

fn conv_layer() -> NetworkSpec {
    NetworkSpec::new(
        Shape::new(1, 96, 96),
        vec![LayerSpec::conv(16, 7, Activation::Tanh)],
    )
    .expect("geometry fits")
}

fn fc_layer() -> NetworkSpec {
    NetworkSpec::new(
        Shape::flat(2048),
        vec![LayerSpec::fc(1024, Activation::Sigmoid)],
    )
    .expect("geometry fits")
}

fn main() {
    header(
        "Fig. 15(a)",
        "HMC channel-count sweep vs DDR3, conv 7x7 layer",
    );
    let mut csv = CsvSink::create(
        "fig15_channels",
        &[
            "memory",
            "channels",
            "gops",
            "lateral",
            "mean_latency",
            "agg_bw_gbps",
        ],
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>14}",
        "memory", "GOPs/s", "lateral%", "mean lat.", "agg. BW GB/s"
    );
    // The whole memory sweep (HMC channel counts + the DDR3 baseline)
    // runs concurrently on the kernel's batch runner; each point is its
    // own deterministic cube.
    let points: Vec<(&str, SystemConfig)> = [2u32, 4, 8, 16]
        .iter()
        .map(|&ch| ("HMC", SystemConfig::hmc_with_channels(ch)))
        .chain(std::iter::once(("DDR3", SystemConfig::ddr3())))
        .collect();
    let jobs: Vec<_> = points
        .iter()
        .map(|(_, cfg)| (cfg.clone(), conv_layer(), 15u64))
        .collect();
    let results = run_sweep(&jobs);
    for ((name, cfg), (rep, stats)) in points.iter().zip(&results) {
        let ch = cfg.memory.channels;
        let agg = cfg.memory.aggregate_bandwidth_gbps();
        export_stats(&format!("fig15_{}_{ch}ch", name.to_lowercase()), stats);
        csv.row(&[
            (*name).to_string(),
            ch.to_string(),
            csv_f(rep.throughput_gops()),
            csv_f(rep.lateral_fraction()),
            csv_f(rep.layers[0].noc_mean_latency),
            csv_f(agg),
        ]);
        println!(
            "{:<22} {:>12.1} {:>11.1}% {:>12.1} {:>14.1}",
            format!("{name} {ch} channels"),
            rep.throughput_gops(),
            100.0 * rep.lateral_fraction(),
            rep.layers[0].noc_mean_latency,
            agg
        );
    }
    println!("paper shape: DDR3 far below HMC despite higher per-channel peak bandwidth.\n");

    header(
        "Fig. 15(b)",
        "2D mesh vs fully connected NoC (no duplication)",
    );
    let mut csv = CsvSink::create(
        "fig15_noc",
        &["layer", "noc", "gops", "lateral", "mean_latency"],
    );
    println!(
        "{:<12} {:<22} {:>12} {:>12} {:>12}",
        "layer", "NoC", "GOPs/s", "lateral%", "mean lat."
    );
    let cases: Vec<(&str, &str, SystemConfig, NetworkSpec)> =
        [("conv 7x7", conv_layer()), ("fc 1024", fc_layer())]
            .into_iter()
            .flat_map(|(name, spec)| {
                [
                    ("4x4 mesh", SystemConfig::paper(false)),
                    ("fully connected", SystemConfig::fully_connected_noc(false)),
                ]
                .map(|(noc, cfg)| (name, noc, cfg, spec.clone()))
            })
            .collect();
    let jobs: Vec<_> = cases
        .iter()
        .map(|(_, _, cfg, spec)| (cfg.clone(), spec.clone(), 15u64))
        .collect();
    let results = run_sweep(&jobs);
    for ((name, noc, _, _), (rep, _)) in cases.iter().zip(&results) {
        csv.row(&[
            name.to_string(),
            noc.to_string(),
            csv_f(rep.throughput_gops()),
            csv_f(rep.lateral_fraction()),
            csv_f(rep.layers[0].noc_mean_latency),
        ]);
        println!(
            "{:<12} {:<22} {:>12.1} {:>11.1}% {:>12.1}",
            name,
            noc,
            rep.throughput_gops(),
            100.0 * rep.lateral_fraction(),
            rep.layers[0].noc_mean_latency
        );
    }
    println!(
        "paper shape: the fully connected NoC removes the dense layer's mesh penalty\n\
         (at the cost of 17-port routers)."
    );
}
