//! Table I — 3D stacked memory specification comparison.

use neurocube_bench::header;
use neurocube_dram::MEMORY_SPECS;

fn main() {
    header("Table I", "3D stacked memory specification");
    println!(
        "{:<11} {:>5} {:>9} {:>9} {:>11} {:>11} {:>8} {:>11}",
        "Memory", "I/F", "Max.Ch", "Word", "Peak BW/ch", "tCL+tRCD", "VDD", "Energy"
    );
    for spec in &MEMORY_SPECS {
        println!("{spec}");
    }
    println!("\naggregate peak bandwidth (all channels):");
    for spec in &MEMORY_SPECS {
        println!(
            "  {:<11} {:>8.1} GB/s",
            spec.name,
            spec.aggregate_peak_bandwidth_gbps()
        );
    }
    println!(
        "\nthe Fig. 15(a) argument: DDR3 beats HMC-Int per channel ({} vs {} GB/s)\n\
         but loses 6.25x in aggregate ({} vs {} GB/s) — concurrency over peak rate",
        MEMORY_SPECS[0].peak_bw_gbps,
        MEMORY_SPECS[4].peak_bw_gbps,
        MEMORY_SPECS[0].aggregate_peak_bandwidth_gbps(),
        MEMORY_SPECS[4].aggregate_peak_bandwidth_gbps()
    );
}
