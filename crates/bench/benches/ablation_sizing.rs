//! Ablation: PE cache sub-bank depth × PNG run-ahead window.
//!
//! Two coupled buffer-sizing choices the paper leaves implicit:
//!
//! * the **run-ahead window** (how far a vault may stream ahead of a PE's
//!   operation counter) must be large enough to ride out DRAM burst gaps
//!   and row activations, but every op it admits lands in one OP-ID
//!   residue class of the PE cache, and the paper's *full sub-bank search*
//!   (§V-B, 16–64 cycles) only hides behind the 16-cycle MAC latency while
//!   sub-banks stay at ≤ 16 entries;
//! * the **sub-bank depth** bounds the window (deadlock freedom:
//!   `ceil(window/16) × 17 ≤ entries`).
//!
//! The sweep shows the design point the paper's 2.5 KB / 64-entry cache and
//! our 16-op window sit at: smaller windows starve, larger windows pay the
//! search cost.

use neurocube::{Neurocube, SystemConfig};
use neurocube_bench::{header, ramp_input};
use neurocube_fixed::Activation;
use neurocube_nn::{LayerSpec, NetworkSpec, Shape};

fn main() {
    header(
        "Ablation",
        "PE cache depth x PNG run-ahead window, conv 7x7 16 maps on 96x96",
    );
    let spec = NetworkSpec::new(
        Shape::new(1, 96, 96),
        vec![LayerSpec::conv(16, 7, Activation::Tanh)],
    )
    .expect("geometry fits");
    let params = spec.init_params(8, 0.25);
    let input = ramp_input(&spec);

    println!(
        "{:<10} {:<8} {:>12} {:>10} {:>14}",
        "window", "cache", "GOPs/s", "util%", "note"
    );
    for (window, cache) in [
        (4u64, 64usize),
        (8, 64),
        (16, 64),
        (32, 64),
        (48, 64),
        (16, 32),
        (48, 128),
    ] {
        let mut cfg = SystemConfig::paper(false);
        cfg.run_ahead_ops = window;
        cfg.cache_entries_per_bank = cache;
        let mut cube = Neurocube::new(cfg);
        let loaded = cube.load(spec.clone(), params.clone());
        let (_, report) = cube.run_inference(&loaded, &input);
        let l = &report.layers[0];
        let note = match (window, cache) {
            (16, 64) => "paper design point",
            (4, _) => "starves on burst gaps",
            (48, 64) => "search cost exceeds MAC shadow",
            _ => "",
        };
        println!(
            "{:<10} {:<8} {:>12.1} {:>9.1}% {:>14}",
            window,
            cache,
            l.throughput_gops(),
            100.0 * l.mac_utilization(),
            note
        );
    }
    println!(
        "\ninvariant: ceil(window/16) x 17 <= cache entries (deadlock freedom);\n\
         configurations violating it are rejected by SystemConfig::validate."
    );
}
