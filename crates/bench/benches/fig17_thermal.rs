//! Fig. 17 — 3D thermal simulation of the Neurocube stack.
//!
//! Paper: at 15 nm / 5 GHz the hottest logic-die tile reaches 349 K and the
//! hottest DRAM tile 344 K — within the HMC 2.0 limits (383 K / 378 K); at
//! 28 nm the rise is negligible.

use neurocube_bench::header;
use neurocube_power::table2::ProcessNode;
use neurocube_power::thermal::{self, DRAM_LIMIT_K, LOGIC_LIMIT_K};

fn main() {
    header("Fig. 17", "steady-state 3D thermal map of the 5-die stack");
    for node in [ProcessNode::Cmos28, ProcessNode::FinFet15] {
        let r = thermal::solve_node(node);
        println!("[{}] ({} Gauss-Seidel sweeps)", node.name(), r.iterations);
        println!(
            "  max logic die: {:.1} K (limit {LOGIC_LIMIT_K} K; paper @15nm: 349 K)",
            r.max_logic_k()
        );
        println!(
            "  max DRAM die:  {:.1} K (limit {DRAM_LIMIT_K} K; paper @15nm: 344 K)",
            r.max_dram_k()
        );
        println!("  within HMC 2.0 limits: {}", r.within_hmc_limits());
        // Per-die maxima, logic first.
        let per_die: Vec<f64> = r
            .temps_k
            .iter()
            .map(|die| die.iter().copied().fold(f64::MIN, f64::max))
            .collect();
        println!(
            "  per-die maxima (logic, DRAM0..3): {:?}",
            per_die
                .iter()
                .map(|t| (t * 10.0).round() / 10.0)
                .collect::<Vec<_>>()
        );
        println!();
    }
}
