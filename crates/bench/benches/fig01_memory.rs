//! Fig. 1 — required memory vs input size for scene labeling, and the
//! MNIST MLP, against 1 mm² of on-chip SRAM / eDRAM.
//!
//! The paper's motivating figure: realistic scene-labeling resolutions
//! need orders of magnitude more storage than on-chip memory provides,
//! motivating 3D-stacked DRAM.

use neurocube_bench::header;
use neurocube_nn::footprint::{self, EDRAM_BYTES_PER_MM2, SRAM_BYTES_PER_MM2};
use neurocube_nn::workloads;

fn main() {
    header(
        "Fig. 1",
        "required memory vs on-chip capacity (per 1 mm² of SRAM / eDRAM)",
    );
    println!(
        "on-chip capacities: SRAM {:.2} MiB/mm² [11], eDRAM {:.2} MiB/mm² [12]\n",
        SRAM_BYTES_PER_MM2 as f64 / (1 << 20) as f64,
        EDRAM_BYTES_PER_MM2 as f64 / (1 << 20) as f64
    );
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "network / input", "states MiB", "weights MiB", "total MiB", "SRAM mm²", "eDRAM mm²"
    );
    let sizes: [(usize, usize); 6] = [
        (60, 80),
        (120, 160),
        (240, 320),
        (480, 640),
        (600, 800),
        (960, 1280),
    ];
    for (h, w) in sizes {
        let net = workloads::scene_labeling(h, w).expect("geometry fits");
        let fp = footprint::of_network(&net);
        println!(
            "{:<26} {:>12.2} {:>12.2} {:>12.2} {:>10.2} {:>10.2}",
            format!("scene labeling {w}x{h}"),
            fp.state_bytes as f64 / (1 << 20) as f64,
            fp.weight_bytes as f64 / (1 << 20) as f64,
            fp.total_mib(),
            fp.sram_mm2(),
            fp.edram_mm2()
        );
    }
    for hidden in [100, 300, 1000] {
        let net = workloads::mnist_mlp(hidden);
        let fp = footprint::of_network(&net);
        println!(
            "{:<26} {:>12.2} {:>12.2} {:>12.2} {:>10.2} {:>10.2}",
            format!("MNIST MLP 784-{hidden}-10"),
            fp.state_bytes as f64 / (1 << 20) as f64,
            fp.weight_bytes as f64 / (1 << 20) as f64,
            fp.total_mib(),
            fp.sram_mm2(),
            fp.edram_mm2()
        );
    }
    let paper = footprint::of_network(&workloads::scene_labeling_paper());
    println!(
        "\nheadline: the paper's 320x240 network needs {:.1} MiB — {}x what 1 mm² of eDRAM holds",
        paper.total_mib(),
        (paper.total_bytes() / EDRAM_BYTES_PER_MM2).max(1)
    );
}
