//! Fig. 13 — Neurocube training performance on scene labeling (64×64
//! input, data duplication).
//!
//! Panels: (a) operations per layer/pass, (b) cycles, (c) throughput,
//! (d) memory requirement and duplication overhead.
//!
//! Paper reference points: 126.8 GOPs/s training throughput (vs 132.4 for
//! inference), 48 % duplication memory overhead, 272.52 frames/s at 28 nm
//! and 4542.14 frames/s at 15 nm (one epoch, 64×64).

use neurocube::{training_ops, Neurocube, SystemConfig};
use neurocube_bench::{header, print_layer_panels, ramp_input};
use neurocube_nn::workloads;

fn main() {
    header(
        "Fig. 13",
        "scene-labeling training, 64x64 input, duplication",
    );
    let spec = workloads::scene_labeling_training();
    let params = spec.init_params(13, 0.25);
    let mut cube = Neurocube::new(SystemConfig::paper(true));
    let loaded = cube.load(spec.clone(), params);
    let input = ramp_input(&spec);
    let report = cube.run_training_step(&loaded, &input);

    print_layer_panels(&report);
    println!(
        "\nanalytical training ops (pass schedule): {} (simulated {})",
        training_ops(&spec),
        report.total_ops()
    );
    println!(
        "memory: {:.1} MiB stored, {:.1} MiB minimal, {:.1}% duplication overhead (paper: 48%)",
        report.memory_bytes as f64 / (1 << 20) as f64,
        report.memory_minimal_bytes as f64 / (1 << 20) as f64,
        100.0 * report.memory_overhead()
    );
    println!(
        "training throughput: {:.1} GOPs/s @5GHz (paper 126.8), {:.1} @300MHz",
        report.throughput_gops(),
        report.throughput_gops_at(300.0e6)
    );
    println!(
        "training steps/s: {:.2} @300MHz 28nm (paper 272.52), {:.2} @5GHz 15nm (paper 4542.14)",
        report.frames_per_second_at(300.0e6),
        report.frames_per_second_at(5.0e9)
    );

    // Functional learning check: the nn-crate trainer (same MAC/LUT
    // semantics) actually reduces loss on a small synthetic task.
    let mlp = workloads::mnist_mlp(32);
    let mlp_params = mlp.init_params(5, 0.2);
    let exec = neurocube_nn::Executor::new(mlp, mlp_params);
    let mut trainer = neurocube_nn::Trainer::new(exec, neurocube_nn::TrainerConfig::default());
    let data = workloads::digit_dataset(3, 2);
    let losses = trainer.fit(&data, 5);
    println!(
        "\nfunctional backprop on synthetic digits (MSE/epoch): {:?}",
        losses
            .iter()
            .map(|l| (l * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
}
