//! Accuracy under faults: inference quality and fabric overhead across
//! injected fault rates.
//!
//! Two workloads — the MNIST-style MLP (Fig. 1 / Table III) and the
//! Fig. 14 conv shape — run across uniform per-bit/per-flit/per-MAC fault
//! rates {0, 1e-9 … 1e-4}. Every faulty output is compared element-wise
//! against the same seed's zero-fault output, so each row reports
//! *degradation caused by faults alone*: fraction of output neurons
//! changed, mean/max absolute error, the retransmit overhead the link
//! parity paid, and packets consumed as counted drops instead of panics.
//!
//! Each rate also runs with SECDED ECC on, reporting how many faulty DRAM
//! words the code corrected (single-bit) or only detected (multi-bit) and
//! the ECC energy bill from the power model (check-bit transfer + decode
//! logic, `power::hmc`).
//!
//! The zero-rate sweep point is asserted bitwise identical to a run with
//! no injector attached — the fault machinery is provably free when off.
//! Every point is seed-replayable: the same `NEUROCUBE_FAULT_SEED` (here
//! pinned per workload) reproduces the same faults bit for bit.

use neurocube::SystemConfig;
use neurocube_bench::{csv_f, header, run_inference_faulty, CsvSink, FaultRun};
use neurocube_fault::FaultConfig;
use neurocube_fixed::Activation;
use neurocube_nn::{workloads, LayerSpec, NetworkSpec, Shape};
use neurocube_power::hmc;

struct Workload {
    name: &'static str,
    cfg: SystemConfig,
    spec: NetworkSpec,
    seed: u64,
}

fn workload_table() -> Vec<Workload> {
    vec![
        Workload {
            name: "mnist_mlp100",
            cfg: SystemConfig::paper(true),
            spec: workloads::mnist_mlp(100),
            seed: 3,
        },
        Workload {
            name: "fig14_conv_k5",
            cfg: SystemConfig::paper(true),
            spec: NetworkSpec::new(
                Shape::new(1, 128, 128),
                vec![LayerSpec::conv(16, 5, Activation::Tanh)],
            )
            .expect("geometry fits"),
            seed: 14,
        },
    ]
}

const RATES: [f64; 7] = [0.0, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4];

/// Element-wise output degradation vs the zero-fault reference.
struct Degradation {
    changed_frac: f64,
    mean_abs_err: f64,
    max_abs_err: f64,
}

fn degradation(reference: &FaultRun, faulty: &FaultRun) -> Degradation {
    let a = reference.output.as_slice();
    let b = faulty.output.as_slice();
    assert_eq!(a.len(), b.len(), "fault injection must not resize outputs");
    let mut changed = 0usize;
    let mut sum = 0.0;
    let mut max = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        if x != y {
            changed += 1;
        }
        let e = (x.to_f64() - y.to_f64()).abs();
        sum += e;
        max = max.max(e);
    }
    Degradation {
        changed_frac: changed as f64 / a.len() as f64,
        mean_abs_err: sum / a.len() as f64,
        max_abs_err: max,
    }
}

fn main() {
    header(
        "fault_sweep",
        "accuracy degradation and retransmit overhead vs injected fault rate",
    );
    let mut csv = CsvSink::create(
        "fault_sweep",
        &[
            "workload",
            "rate",
            "changed_frac",
            "mean_abs_err",
            "max_abs_err",
            "mac_faults",
            "dram_flips",
            "noc_retransmits",
            "retx_per_kpkt",
            "dropped_packets",
            "ecc_corrected",
            "ecc_detected",
            "ecc_energy_j",
        ],
    );
    for w in &workload_table() {
        println!("\n-- {} (seed {}) --", w.name, w.seed);
        println!(
            "{:>8} {:>9} {:>10} {:>10} {:>6} {:>6} {:>6} {:>10} {:>7} {:>8} {:>8} {:>11}",
            "rate",
            "changed%",
            "mean|e|",
            "max|e|",
            "mac",
            "dram",
            "retx",
            "retx/kpkt",
            "dropped",
            "ecc fix",
            "ecc det",
            "ecc J"
        );
        let reference = run_inference_faulty(w.cfg.clone(), &w.spec, w.seed, None);
        assert!(
            reference.report.fault.is_none(),
            "reference run must carry no injector"
        );
        for &rate in &RATES {
            let faulty = run_inference_faulty(
                w.cfg.clone(),
                &w.spec,
                w.seed,
                Some(FaultConfig::uniform(w.seed, rate)),
            );
            if rate == 0.0 {
                // The zero-rate point is the fault-free simulator, bit for
                // bit: same outputs, same report, same registry, no
                // `fault.*` counters.
                assert_eq!(faulty.output.as_slice(), reference.output.as_slice());
                assert_eq!(faulty.report, reference.report);
                assert_eq!(faulty.stats, reference.stats);
            }
            // Replayability: the same (seed, rate) reproduces the same run.
            let replay = run_inference_faulty(
                w.cfg.clone(),
                &w.spec,
                w.seed,
                Some(FaultConfig::uniform(w.seed, rate)),
            );
            assert_eq!(
                faulty.stats, replay.stats,
                "fault injection must be seed-replayable"
            );

            let mut ecc_cfg = FaultConfig::uniform(w.seed, rate);
            ecc_cfg.ecc = true;
            let ecc = run_inference_faulty(w.cfg.clone(), &w.spec, w.seed, Some(ecc_cfg));
            let ecc_sum = ecc.report.fault.expect("ECC run carries an injector");
            let ecc_energy = hmc::secded_overhead_j(ecc_sum.ecc_words, hmc::DRAM_PJ_PER_BIT);

            let d = degradation(&reference, &faulty);
            let f = faulty.report.fault.unwrap_or_default();
            let delivered = faulty.stats.counter("noc.delivered").max(1);
            let retx_per_kpkt = 1000.0 * f.noc_retransmits as f64 / delivered as f64;
            println!(
                "{:>8.0e} {:>8.3}% {:>10.2e} {:>10.2e} {:>6} {:>6} {:>6} {:>10.3} {:>7} {:>8} {:>8} {:>11.3e}",
                rate,
                100.0 * d.changed_frac,
                d.mean_abs_err,
                d.max_abs_err,
                f.pe_mac_faults,
                f.dram_read_flips + f.dram_stuck_bits + f.dram_upsets,
                f.noc_retransmits,
                retx_per_kpkt,
                f.dropped_packets,
                ecc_sum.ecc_corrected,
                ecc_sum.ecc_detected,
                ecc_energy,
            );
            csv.row(&[
                w.name.to_string(),
                format!("{rate:e}"),
                csv_f(d.changed_frac),
                format!("{:e}", d.mean_abs_err),
                format!("{:e}", d.max_abs_err),
                f.pe_mac_faults.to_string(),
                (f.dram_read_flips + f.dram_stuck_bits + f.dram_upsets).to_string(),
                f.noc_retransmits.to_string(),
                csv_f(retx_per_kpkt),
                f.dropped_packets.to_string(),
                ecc_sum.ecc_corrected.to_string(),
                ecc_sum.ecc_detected.to_string(),
                format!("{ecc_energy:e}"),
            ]);
        }
        println!("(zero-rate point verified bitwise-identical to the no-injector run)");
    }
    println!(
        "\nEvery row replayed bitwise-identically from its (seed, rate) pair; \
         set NEUROCUBE_CSV=<dir> for fault_sweep.csv"
    );
}
