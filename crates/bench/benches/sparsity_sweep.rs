//! Sparsity sweep: zero-operand classification and what gating hardware
//! would save, as a function of activation/weight density.
//!
//! A ReLU conv net runs at a ladder of operand densities (fraction of
//! nonzero input pixels and weights). Each density point runs twice on
//! identical cubes — once with the PE zero-operand fast paths forced off
//! (the dense oracle) and once forced on — and the harness asserts the
//! two runs are bitwise identical (same output tensor, same `RunReport`,
//! same statistics registry) before reporting anything: skipping zeros is
//! lossless in Q1.7.8 and changes no architectural number (DESIGN.md
//! §13), so a divergence here is a simulator bug, not a modeling choice.
//!
//! Per point the sweep reports the classification counters
//! (`sparsity.*`), the MAC energy an operand-gated datapath would save
//! (`neurocube_power::gating`, 15 nm point) and the DRAM transfer energy a
//! zero-eliding vault controller would save, plus host wall-clock for
//! both modes. Results go to `BENCH_sparsity.json` at the workspace root
//! (override with `NEUROCUBE_SPARSITY_OUT`). The run gates itself: gated
//! lane-cycles and saved pJ must increase monotonically as density drops,
//! or the process exits non-zero (the `ci.sh --sparsity` sanity gate).

use neurocube::SystemConfig;
use neurocube_bench::{header, run_inference_sparsity};
use neurocube_fixed::{Activation, Q88};
use neurocube_nn::{LayerSpec, NetworkSpec, Shape, Tensor};
use neurocube_power::gating::{elided_transfer_energy_j, gated_mac_energy_j};
use neurocube_power::ProcessNode;
use std::path::PathBuf;
use std::time::Instant;

/// The sweep's density ladder: one nonzero operand per `keep` positions,
/// so density = 1/keep. `keep = 1` is the fully dense reference.
const KEEPS: [usize; 5] = [1, 2, 4, 8, 16];

fn relu_net() -> NetworkSpec {
    NetworkSpec::new(
        Shape::new(1, 64, 64),
        vec![LayerSpec::conv(8, 3, Activation::ReLU)],
    )
    .expect("geometry fits")
}

/// Input with one nonzero pixel per `keep`, values guaranteed nonzero
/// where kept (the ramp skips the value 0).
fn sparse_input(spec: &NetworkSpec, keep: usize) -> Tensor {
    let s = spec.input_shape();
    let data = (0..s.len())
        .map(|i| {
            if i % keep == 0 {
                Q88::from_f64(((i % 63) as f64 + 1.0) / 64.0)
            } else {
                Q88::ZERO
            }
        })
        .collect();
    Tensor::from_vec(s.channels, s.height, s.width, data)
}

/// The net's seeded parameters with all but one weight per `keep` zeroed.
fn sparse_params(spec: &NetworkSpec, seed: u64, keep: usize) -> Vec<Vec<Q88>> {
    let mut params = spec.init_params(seed, 0.25);
    for layer in &mut params {
        for (i, w) in layer.iter_mut().enumerate() {
            if i % keep != 0 {
                *w = Q88::ZERO;
            }
        }
    }
    params
}

struct Point {
    keep: usize,
    cycles: u64,
    mac_ops: u64,
    lanes_gated: u64,
    zero_activations: u64,
    zero_state_operands: u64,
    zero_weight_operands: u64,
    dram_zero_words_read: u64,
    dram_zero_read_runs: u64,
    gated_mac_pj: f64,
    elidable_dram_pj: f64,
    dense_secs: f64,
    sparse_secs: f64,
}

fn write_json(points: &[Point], path: &PathBuf) {
    let mut out = String::from("{\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"density\": {:.4}, \"simulated_cycles\": {}, \"mac_ops\": {}, \
             \"lanes_gated\": {}, \"zero_activations\": {}, \
             \"zero_state_operands\": {}, \"zero_weight_operands\": {}, \
             \"dram_zero_words_read\": {}, \"dram_zero_read_runs\": {}, \
             \"gated_mac_pj\": {:.1}, \"elidable_dram_pj\": {:.1}, \
             \"dense_host_secs\": {:.4}, \"sparse_host_secs\": {:.4}}}{}\n",
            1.0 / p.keep as f64,
            p.cycles,
            p.mac_ops,
            p.lanes_gated,
            p.zero_activations,
            p.zero_state_operands,
            p.zero_weight_operands,
            p.dram_zero_words_read,
            p.dram_zero_read_runs,
            p.gated_mac_pj,
            p.elidable_dram_pj,
            p.dense_secs,
            p.sparse_secs,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_sparsity.json");
}

fn main() {
    header(
        "BENCH_sparsity",
        "zero-operand classification and gated-update savings vs operand density",
    );
    let spec = relu_net();
    let cfg = SystemConfig::paper(true);
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "density",
        "sim cycles",
        "mac ops",
        "lanes gated",
        "zero acts",
        "gated pJ",
        "elidable pJ",
        "dense s",
        "sparse s"
    );
    let mut points: Vec<Point> = Vec::new();
    for keep in KEEPS {
        let input = sparse_input(&spec, keep);
        let params = sparse_params(&spec, 9, keep);
        let t0 = Instant::now();
        let dense = run_inference_sparsity(cfg.clone(), &spec, params.clone(), &input, Some(false));
        let dense_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let sparse = run_inference_sparsity(cfg.clone(), &spec, params, &input, Some(true));
        let sparse_secs = t1.elapsed().as_secs_f64();

        // The losslessness contract, checked before any number is used.
        assert_eq!(
            dense.output, sparse.output,
            "keep={keep}: sparsity fast paths changed the output tensor"
        );
        assert_eq!(
            dense.report, sparse.report,
            "keep={keep}: sparsity fast paths changed the run report"
        );
        if let Some(diff) = dense.stats.first_difference(&sparse.stats) {
            panic!("keep={keep}: sparsity fast paths changed the registry: {diff}");
        }

        let stats = &sparse.stats;
        let lanes_gated = stats.counter("sparsity.pe.lanes_gated");
        let zero_words = stats.counter("sparsity.dram.zero_words_read");
        let word_bits = u64::from(cfg.memory.channel.word_bits);
        let pj_per_bit = cfg.memory.channel.energy_pj_per_bit;
        let point = Point {
            keep,
            cycles: sparse.report.total_cycles(),
            mac_ops: stats.sum_suffix(".mac_ops"),
            lanes_gated,
            zero_activations: stats.counter("sparsity.png.zero_activations"),
            zero_state_operands: stats.counter("sparsity.png.zero_state_operands"),
            zero_weight_operands: stats.counter("sparsity.png.zero_weight_operands"),
            dram_zero_words_read: zero_words,
            dram_zero_read_runs: stats.counter("sparsity.dram.zero_read_runs"),
            gated_mac_pj: gated_mac_energy_j(ProcessNode::FinFet15, lanes_gated) * 1e12,
            elidable_dram_pj: elided_transfer_energy_j(zero_words * word_bits, pj_per_bit) * 1e12,
            dense_secs,
            sparse_secs,
        };
        println!(
            "{:<8.4} {:>12} {:>12} {:>12} {:>10} {:>12.0} {:>12.0} {:>9.3} {:>9.3}",
            1.0 / keep as f64,
            point.cycles,
            point.mac_ops,
            point.lanes_gated,
            point.zero_activations,
            point.gated_mac_pj,
            point.elidable_dram_pj,
            point.dense_secs,
            point.sparse_secs,
        );
        points.push(point);
    }

    // Sanity gate: savings must grow monotonically as density drops. The
    // counters are deterministic, so any wobble is a classification bug.
    for w in points.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        assert!(
            b.lanes_gated >= a.lanes_gated,
            "gated lane-cycles fell as density dropped: {} (1/{}) -> {} (1/{})",
            a.lanes_gated,
            a.keep,
            b.lanes_gated,
            b.keep
        );
        assert!(
            b.gated_mac_pj >= a.gated_mac_pj && b.elidable_dram_pj >= a.elidable_dram_pj,
            "saved energy fell as density dropped (1/{} -> 1/{})",
            a.keep,
            b.keep
        );
    }
    let first = points.first().expect("sweep is non-empty");
    let last = points.last().expect("sweep is non-empty");
    assert!(
        last.lanes_gated > first.lanes_gated && last.gated_mac_pj > first.gated_mac_pj,
        "the sweep never classified any sparsity"
    );
    println!(
        "\nsanity gate passed: gated lane-cycles {} -> {} and saved pJ {:.0} -> {:.0} \
         grow monotonically as density falls 1/{} -> 1/{}",
        first.lanes_gated,
        last.lanes_gated,
        first.gated_mac_pj,
        last.gated_mac_pj,
        first.keep,
        last.keep
    );

    let out = std::env::var_os("NEUROCUBE_SPARSITY_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_sparsity.json")
        });
    write_json(&points, &out);
    println!("wrote {}", out.display());
}
