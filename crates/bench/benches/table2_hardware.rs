//! Table II — hardware simulation of a single Neurocube core.
//!
//! Re-derives every aggregate of the paper's Table II from the synthesized
//! per-component constants: PE sums, compute totals, power density and the
//! pJ/bit-based HMC logic-die and DRAM power rows.

use neurocube_bench::header;
use neurocube_power::hmc;
use neurocube_power::table2::{
    compute_area_mm2, compute_power_w, pe_sum_area_mm2, pe_sum_power_w, ProcessNode,
    TABLE2_COMPONENTS,
};

fn main() {
    header(
        "Table II",
        "hardware simulation of a single core in Neurocube",
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9}",
        "module",
        "bits",
        "f28 MHz",
        "f15 MHz",
        "P28 W",
        "P15 W",
        "A28 mm2",
        "A15 mm2",
        "D28 W/mm2",
        "D15 W/mm2"
    );
    for c in &TABLE2_COMPONENTS {
        println!(
            "{:<16} {:>8} {:>8.2} {:>8} {:>10.2e} {:>10.2e} {:>8.4} {:>8.4} {:>9.2e} {:>9.2e}",
            c.name,
            c.size_bits.map_or("N/A".into(), |b| b.to_string()),
            c.freq_mhz.0,
            c.freq_mhz.1,
            c.dynamic_w.0,
            c.dynamic_w.1,
            c.area_mm2.0,
            c.area_mm2.1,
            c.power_density(ProcessNode::Cmos28),
            c.power_density(ProcessNode::FinFet15),
        );
    }
    for node in [ProcessNode::Cmos28, ProcessNode::FinFet15] {
        println!(
            "\n[{}] PE sum: {:.4} W, {:.4} mm² (paper: {} W, {} mm²)",
            node.name(),
            pe_sum_power_w(node),
            pe_sum_area_mm2(node),
            if node == ProcessNode::Cmos28 {
                "1.56e-2"
            } else {
                "2.13e-1"
            },
            if node == ProcessNode::Cmos28 {
                "0.1936"
            } else {
                "0.0600"
            },
        );
        println!(
            "[{}] compute (16 PEs + routers): {:.3} W, {:.3} mm² (paper: {} W, {} mm²)",
            node.name(),
            compute_power_w(node),
            compute_area_mm2(node),
            if node == ProcessNode::Cmos28 {
                "0.249"
            } else {
                "3.41"
            },
            if node == ProcessNode::Cmos28 {
                "3.0983"
            } else {
                "0.9601"
            },
        );
        println!(
            "[{}] HMC logic die w/o Neurocube: {:.3} W (paper: {}), all DRAM dies: {:.3} W (paper: {})",
            node.name(),
            hmc::logic_die_power_w(node),
            if node == ProcessNode::Cmos28 { "1.04" } else { "8.67" },
            hmc::dram_dies_power_w(node),
            if node == ProcessNode::Cmos28 { "0.568" } else { "9.47" },
        );
        println!(
            "[{}] total system power: {:.2} W (Table III parenthesis: {})",
            node.name(),
            hmc::system_power_w(node),
            if node == ProcessNode::Cmos28 {
                "1.86"
            } else {
                "21.50"
            },
        );
    }
    println!(
        "\nactivity scaling: the 28 nm node streams vaults at 300 MHz / 5 GHz = {:.2} activity;\n\
         the 15 nm logic-die baseline carries the ITRS energy scale factor {}.",
        ProcessNode::Cmos28.activity(),
        hmc::ITRS_15NM_LOGIC_SCALE
    );
}
