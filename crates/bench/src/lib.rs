//! Shared helpers for the Neurocube experiment harnesses.
//!
//! Each table and figure of the paper has a dedicated bench target (run
//! `cargo bench -p neurocube-bench --bench <name>`); they print the same
//! rows/series the paper reports so `EXPERIMENTS.md` can record
//! paper-vs-measured values. Heavy experiments accept a scale factor
//! through the `NEUROCUBE_SCALE` environment variable (see
//! [`scene_scale`]): `full` runs the paper's exact geometry, the default
//! `fast` runs a proportionally reduced input that preserves every
//! qualitative shape at a fraction of the wall-clock time.

#![forbid(unsafe_code)]

use neurocube::{Neurocube, RunReport, SystemConfig};
use neurocube_fault::FaultConfig;
use neurocube_fixed::Q88;
use neurocube_nn::{GraphSpec, NetworkSpec, Tensor};
use neurocube_sim::{env_str, BatchRunner, StatsRegistry};
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;

/// The scene-labeling input resolution selected by `NEUROCUBE_SCALE`:
/// `full` → the paper's 320×240, `fast` (default) → 160×120,
/// `tiny` → 80×60 (CI smoke runs).
pub fn scene_scale() -> (usize, usize, &'static str) {
    match env_str("NEUROCUBE_SCALE").as_deref() {
        Some("full") => (240, 320, "full (paper 320x240)"),
        Some("tiny") => (60, 80, "tiny (80x60)"),
        _ => (120, 160, "fast (160x120)"),
    }
}

/// Deterministic pseudo-image input for throughput runs (values don't
/// affect timing; this keeps runs reproducible).
pub fn ramp_input(spec: &NetworkSpec) -> Tensor {
    let s = spec.input_shape();
    let data = (0..s.len())
        .map(|i| Q88::from_f64(((i % 64) as f64 - 32.0) / 32.0))
        .collect();
    Tensor::from_vec(s.channels, s.height, s.width, data)
}

/// Loads `spec` into a fresh cube with `cfg` and runs one inference.
pub fn run_inference(cfg: SystemConfig, spec: &NetworkSpec, seed: u64) -> RunReport {
    run_inference_stats(cfg, spec, seed).0
}

/// Like [`run_inference`], but also returns the cube's final statistics
/// registry for CSV/JSON export.
pub fn run_inference_stats(
    cfg: SystemConfig,
    spec: &NetworkSpec,
    seed: u64,
) -> (RunReport, StatsRegistry) {
    let (report, stats, _) = run_inference_mode(cfg, spec, seed, None);
    (report, stats)
}

/// Fast-forward telemetry from one inference run (see
/// [`Neurocube::skipped_cycles`] and [`Neurocube::horizon_jumps`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkipTelemetry {
    /// Simulated cycles crossed by event-horizon jumps instead of ticking.
    pub skipped_cycles: u64,
    /// Number of fast-forward jumps taken.
    pub horizon_jumps: u64,
}

/// Like [`run_inference_stats`], but with explicit control over
/// event-horizon fast-forwarding: `Some(true)` forces skipping on,
/// `Some(false)` forces the naive per-cycle oracle, `None` inherits the
/// `NEUROCUBE_NO_SKIP` process default. Returns the run's fast-forward
/// telemetry alongside the report — the wall-clock benchmark uses this to
/// compare both modes and prove they agree bitwise.
pub fn run_inference_mode(
    cfg: SystemConfig,
    spec: &NetworkSpec,
    seed: u64,
    skip: Option<bool>,
) -> (RunReport, StatsRegistry, SkipTelemetry) {
    run_inference_variant(cfg, spec, seed, skip, None)
}

/// [`run_inference_mode`] with the PE datapath also pinned: `simd =
/// Some(false)` forces the per-lane scalar `MacUnit` oracle, `Some(true)`
/// the SoA lane kernels, `None` the process default. The benchmark uses
/// this to time the scalar column and to assert it is bitwise identical
/// to the SoA run it reports.
pub fn run_inference_variant(
    cfg: SystemConfig,
    spec: &NetworkSpec,
    seed: u64,
    skip: Option<bool>,
    simd: Option<bool>,
) -> (RunReport, StatsRegistry, SkipTelemetry) {
    let params = spec.init_params(seed, 0.25);
    let mut cube = Neurocube::new(cfg);
    cube.set_cycle_skip(skip);
    cube.set_simd(simd);
    let loaded = cube.load(spec.clone(), params);
    let input = ramp_input(spec);
    let (_, report) = cube.run_inference(&loaded, &input);
    let stats = cube.stats_registry();
    let telemetry = SkipTelemetry {
        skipped_cycles: cube.skipped_cycles(),
        horizon_jumps: cube.horizon_jumps(),
    };
    (report, stats, telemetry)
}

/// One sparsity-pinned run (see the `sparsity_sweep` bench): output,
/// report and final registry.
pub struct SparsityRun {
    /// The inference output tensor.
    pub output: Tensor,
    /// The run's report.
    pub report: RunReport,
    /// Final registry snapshot (includes the `sparsity.*` rollup).
    pub stats: StatsRegistry,
}

/// Like [`run_inference_variant`], but the caller supplies the parameter
/// image and input tensor (to control operand density) and pins the PE
/// zero-operand fast paths: `Some(false)` forces the dense kernels,
/// `Some(true)` enables skipping, `None` inherits `NEUROCUBE_NO_SPARSITY`.
/// Both settings are bitwise identical in every observable (DESIGN.md
/// §13); the sweep asserts that before reporting anything.
pub fn run_inference_sparsity(
    cfg: SystemConfig,
    spec: &NetworkSpec,
    params: Vec<Vec<Q88>>,
    input: &Tensor,
    sparsity: Option<bool>,
) -> SparsityRun {
    let mut cube = Neurocube::new(cfg);
    cube.set_sparsity(sparsity);
    let loaded = cube.load(spec.clone(), params);
    let (output, report) = cube.run_inference(&loaded, input);
    let stats = cube.stats_registry();
    SparsityRun {
        output,
        report,
        stats,
    }
}

/// One workload of the simulator wall-clock benchmark (`bench_sim`):
/// a named system configuration + network shape + parameter seed. The
/// table lives here (not in the bench target) so profiling tools can
/// run exactly the shapes the gate measures.
pub struct BenchWorkload {
    /// Stable identifier used in `BENCH_sim.json` and the seed table.
    pub name: &'static str,
    /// System configuration the workload runs on.
    pub cfg: SystemConfig,
    /// Network shape to run.
    pub spec: NetworkSpec,
    /// Parameter-initialisation seed.
    pub seed: u64,
}

fn bench_conv_net(input: usize, maps: usize, kernel: usize) -> NetworkSpec {
    NetworkSpec::new(
        neurocube_nn::Shape::new(1, input, input),
        vec![neurocube_nn::LayerSpec::conv(
            maps,
            kernel,
            neurocube_fixed::Activation::Tanh,
        )],
    )
    .expect("geometry fits")
}

fn bench_fc_net(inputs: usize, hidden: usize) -> NetworkSpec {
    NetworkSpec::new(
        neurocube_nn::Shape::flat(inputs),
        vec![neurocube_nn::LayerSpec::fc(
            hidden,
            neurocube_fixed::Activation::Sigmoid,
        )],
    )
    .expect("geometry fits")
}

/// The Fig. 14/15 shapes the sweeps spend their wall-clock on: the conv
/// kernel sweep's end points (with and without duplication), the FC
/// hidden-width sweep, the Fig. 15 channel-count extremes and the DDR3
/// baseline whose two injection points leave the fabric mostly idle —
/// the workload class event-horizon skipping exists for.
pub fn bench_workloads() -> Vec<BenchWorkload> {
    vec![
        BenchWorkload {
            name: "fig14_conv_k3_dup",
            cfg: SystemConfig::paper(true),
            spec: bench_conv_net(128, 16, 3),
            seed: 14,
        },
        BenchWorkload {
            name: "fig14_conv_k7_nodup",
            cfg: SystemConfig::paper(false),
            spec: bench_conv_net(128, 16, 7),
            seed: 14,
        },
        BenchWorkload {
            name: "fig14_fc_2048x1024_dup",
            cfg: SystemConfig::paper(true),
            spec: bench_fc_net(2048, 1024),
            seed: 14,
        },
        BenchWorkload {
            name: "fig15_conv96_hmc16",
            cfg: SystemConfig::hmc_with_channels(16),
            spec: bench_conv_net(96, 16, 7),
            seed: 15,
        },
        BenchWorkload {
            name: "fig15_conv96_ddr3",
            cfg: SystemConfig::ddr3(),
            spec: bench_conv_net(96, 16, 7),
            seed: 15,
        },
    ]
}

/// Deterministic pseudo-image input sized to a graph's input shape; the
/// graph analogue of [`ramp_input`].
pub fn graph_ramp_input(graph: &GraphSpec) -> Tensor {
    let s = graph.input_shape();
    let data = (0..s.len())
        .map(|i| Q88::from_f64(((i % 64) as f64 - 32.0) / 32.0))
        .collect();
    Tensor::from_vec(s.channels, s.height, s.width, data)
}

/// One compiled-graph run: output, per-phase report, final registry and
/// fast-forward telemetry.
pub struct GraphRunOutput {
    /// The graph's output-node tensor.
    pub output: Tensor,
    /// One [`neurocube::LayerReport`] per executed phase.
    pub report: RunReport,
    /// Final registry snapshot.
    pub stats: StatsRegistry,
    /// Fast-forward telemetry for the run.
    pub telemetry: SkipTelemetry,
}

/// Compiles `graph` onto a fresh cube and runs one inference either
/// `pipelined` (programmed once, phases sequenced on-cube) or as the
/// per-layer replay baseline (one host programming round-trip per phase).
/// `skip` selects the fast-forward mode as in [`run_inference_mode`].
pub fn run_graph_mode(
    cfg: SystemConfig,
    graph: &GraphSpec,
    seed: u64,
    skip: Option<bool>,
    pipelined: bool,
) -> GraphRunOutput {
    let params = graph.init_params(seed, 0.25);
    let mut cube = Neurocube::new(cfg);
    cube.set_cycle_skip(skip);
    let loaded = cube
        .load_graph(graph, params)
        .expect("graph fits the configured cube");
    let input = graph_ramp_input(graph);
    let (output, report) = if pipelined {
        cube.run_graph_inference(&loaded, &input)
    } else {
        cube.run_graph_replay(&loaded, &input)
    };
    GraphRunOutput {
        output,
        report,
        stats: cube.stats_registry(),
        telemetry: SkipTelemetry {
            skipped_cycles: cube.skipped_cycles(),
            horizon_jumps: cube.horizon_jumps(),
        },
    }
}

/// One fault-sweep run: the output tensor (the raw material of the
/// accuracy-under-faults comparison), the run report, and the final
/// statistics registry.
pub struct FaultRun {
    /// The inference output.
    pub output: Tensor,
    /// The run's report (with its `fault` summary when an injector ran).
    pub report: RunReport,
    /// Final registry snapshot (with `fault.*` counters when an injector
    /// ran).
    pub stats: StatsRegistry,
}

/// Like [`run_inference_stats`], but with an explicit fault configuration
/// (`None` detaches any environment-attached injector) and the output
/// tensor returned, so sweeps can measure accuracy degradation against a
/// zero-fault reference.
pub fn run_inference_faulty(
    cfg: SystemConfig,
    spec: &NetworkSpec,
    seed: u64,
    fault: Option<FaultConfig>,
) -> FaultRun {
    let params = spec.init_params(seed, 0.25);
    let mut cube = Neurocube::new(cfg);
    cube.set_fault_config(fault);
    let loaded = cube.load(spec.clone(), params);
    let input = ramp_input(spec);
    let (output, report) = cube.run_inference(&loaded, &input);
    let stats = cube.stats_registry();
    FaultRun {
        output,
        report,
        stats,
    }
}

/// Runs every sweep point of `jobs` on the kernel's [`BatchRunner`] —
/// each point is its own deterministic cube, so results are bitwise
/// identical to a serial sweep — and returns reports (with each cube's
/// statistics registry) in job order.
pub fn run_sweep(jobs: &[(SystemConfig, NetworkSpec, u64)]) -> Vec<(RunReport, StatsRegistry)> {
    BatchRunner::new().run(jobs.len(), |i| {
        let (cfg, spec, seed) = &jobs[i];
        run_inference_stats(cfg.clone(), spec, *seed)
    })
}

/// Exports a statistics registry as `<NEUROCUBE_CSV>/<name>.stats.csv`
/// and `.stats.json`; a no-op when `NEUROCUBE_CSV` is unset.
pub fn export_stats(name: &str, reg: &StatsRegistry) {
    let Some(dir) = std::env::var_os("NEUROCUBE_CSV") else {
        return;
    };
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("create NEUROCUBE_CSV directory");
    std::fs::write(dir.join(format!("{name}.stats.csv")), reg.to_csv()).expect("write stats CSV");
    std::fs::write(dir.join(format!("{name}.stats.json")), reg.to_json())
        .expect("write stats JSON");
}

/// A CSV sink for an experiment's data series, so results can be plotted
/// without scraping stdout. Enabled by setting `NEUROCUBE_CSV=<dir>`;
/// otherwise every write is a no-op.
pub struct CsvSink {
    file: Option<File>,
}

impl CsvSink {
    /// Opens `<NEUROCUBE_CSV>/<name>.csv` (creating the directory) and
    /// writes the header row, or returns a disabled sink.
    pub fn create(name: &str, header: &[&str]) -> CsvSink {
        let Some(dir) = std::env::var_os("NEUROCUBE_CSV") else {
            return CsvSink { file: None };
        };
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create NEUROCUBE_CSV directory");
        let mut file = File::create(dir.join(format!("{name}.csv"))).expect("create CSV");
        writeln!(file, "{}", header.join(",")).expect("write CSV header");
        CsvSink { file: Some(file) }
    }

    /// Appends one data row.
    pub fn row(&mut self, fields: &[String]) {
        if let Some(f) = &mut self.file {
            writeln!(f, "{}", fields.join(",")).expect("write CSV row");
        }
    }
}

/// Formats a float for CSV output.
pub fn csv_f(v: f64) -> String {
    format!("{v:.4}")
}

/// Prints a standard experiment header.
pub fn header(id: &str, what: &str) {
    println!("================================================================");
    println!("{id}: {what}");
    println!("================================================================");
}

/// Prints a per-layer breakdown in the four-panel style of Figs. 12/13:
/// operations, cycles, throughput and traffic per layer.
pub fn print_layer_panels(report: &RunReport) {
    println!(
        "{:<4} {:<6} {:<11} {:>14} {:>12} {:>9} {:>9} {:>8}",
        "L", "kind", "pass", "ops", "cycles", "GOPs/s", "lateral%", "util%"
    );
    for l in &report.layers {
        println!(
            "{:<4} {:<6} {:<11} {:>14} {:>12} {:>9.1} {:>8.1}% {:>7.1}%",
            format!("L{}", l.layer_index + 1),
            l.kind,
            l.pass,
            l.ops(),
            l.cycles,
            l.throughput_gops(),
            100.0 * l.lateral_fraction(),
            100.0 * l.mac_utilization(),
        );
    }
    println!(
        "total: {} ops, {} cycles, {:.1} GOPs/s @5GHz ({:.1} @300MHz), {:.1}% lateral",
        report.total_ops(),
        report.total_cycles(),
        report.throughput_gops(),
        report.throughput_gops_at(300.0e6),
        100.0 * report.lateral_fraction(),
    );
}
