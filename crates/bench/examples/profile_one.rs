//! Per-stage wall-clock profile of one `bench_sim` workload.
//!
//! Runs exactly one workload from the benchmark table in one mode, so the
//! `NEUROCUBE_STAGE_PROFILE=1` breakdown is attributable to a single run:
//!
//! ```text
//! NEUROCUBE_STAGE_PROFILE=1 cargo run --release -p neurocube-bench \
//!     --example profile_one -- fig14_conv_k7_nodup skip
//! ```
//!
//! The second argument is `skip`, `naive`, or omitted (process default).
//! An optional third argument repeats the run N times and reports the
//! fastest (wall-clock noise on shared hardware swamps single runs). An
//! optional fourth argument is a substring filter: every final-registry
//! counter whose key contains it is printed (e.g. `stalls` to see where
//! the PNGs spent their null ticks).
//! Run with no arguments to list the workload names.

use neurocube_bench::{bench_workloads, run_inference_mode, run_inference_stats};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workloads = bench_workloads();
    let Some(name) = args.first() else {
        eprintln!("usage: profile_one <workload> [skip|naive]");
        for w in &workloads {
            eprintln!("  {}", w.name);
        }
        std::process::exit(2);
    };
    let w = workloads
        .iter()
        .find(|w| w.name == *name)
        .unwrap_or_else(|| panic!("unknown workload {name:?} (run with no args for the list)"));
    let skip = match args.get(1).map(String::as_str) {
        Some("skip") => Some(true),
        Some("naive") => Some(false),
        None => None,
        Some(other) => panic!("unknown mode {other:?} (want skip|naive)"),
    };
    let reps: u32 = args
        .get(2)
        .map(|s| s.parse().expect("reps must be an integer"))
        .unwrap_or(1);
    let mut best_secs = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let (report, _, telemetry) = run_inference_mode(w.cfg.clone(), &w.spec, w.seed, skip);
        best_secs = best_secs.min(start.elapsed().as_secs_f64());
        last = Some((report, telemetry));
    }
    let (report, telemetry) = last.expect("at least one rep");
    let cycles = report.total_cycles();
    println!(
        "{}: {} cycles in {:.3}s = {:.0} cycles/s ({} jumps, {} skipped)",
        w.name,
        cycles,
        best_secs,
        cycles as f64 / best_secs,
        telemetry.horizon_jumps,
        telemetry.skipped_cycles,
    );
    if let Some(filter) = args.get(3) {
        let (_, stats) = run_inference_stats(w.cfg.clone(), &w.spec, w.seed);
        for (key, value) in stats.counters() {
            if key.contains(filter.as_str()) {
                println!("  {key} = {value}");
            }
        }
    }
}
