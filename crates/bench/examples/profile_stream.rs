//! Developer profiling driver: drains all 16 vault operand streams of one
//! layer standalone, isolating the PNG address-generation FSM from the
//! rest of the simulator. Usage:
//!
//! ```sh
//! cargo run --release -p neurocube-bench --example profile_stream [dup]
//! ```

use neurocube::SystemConfig;
use neurocube_fixed::Activation;
use neurocube_nn::{LayerSpec, NetworkSpec, Shape};
use neurocube_png::schedule::OperandStream;
use neurocube_png::{compile_layer, layout::NetworkLayout, Mapping};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let dup = std::env::args().nth(1).as_deref() == Some("dup");
    let net = NetworkSpec::new(
        Shape::new(1, 128, 128),
        vec![LayerSpec::conv(16, 7, Activation::Tanh)],
    )
    .unwrap();
    let cfg = SystemConfig::paper(dup);
    let map = cfg.memory.address_map();
    let layout = NetworkLayout::build(&net, 4, 4, dup, 16, &map);
    let prog = compile_layer(&net, &layout, 0, Mapping::paper(dup));
    let t0 = Instant::now();
    let mut total = 0u64;
    for v in 0..16u8 {
        let mut s = OperandStream::new(Arc::clone(&prog), v);
        while s.next().is_some() {
            total += 1;
        }
    }
    eprintln!(
        "dup={dup}: {total} operands across 16 streams in {:.2}s",
        t0.elapsed().as_secs_f64()
    );
}
