//! Developer profiling driver: one workload, both loop modes, with
//! `NEUROCUBE_STAGE_PROFILE=1` this prints the kernel's per-stage
//! wall-clock breakdown. Usage:
//!
//! ```sh
//! NEUROCUBE_STAGE_PROFILE=1 cargo run --release -p neurocube-bench \
//!     --example profile_sim [conv_k7|conv_k3|fc|ddr3]
//! ```

use neurocube::SystemConfig;
use neurocube_bench::run_inference_mode;
use neurocube_fixed::Activation;
use neurocube_nn::{LayerSpec, NetworkSpec, Shape};
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "conv_k7".into());
    let (cfg, spec) = match which.as_str() {
        "conv_k3" => (
            SystemConfig::paper(true),
            NetworkSpec::new(
                Shape::new(1, 128, 128),
                vec![LayerSpec::conv(16, 3, Activation::Tanh)],
            )
            .unwrap(),
        ),
        "fc" => (
            SystemConfig::paper(true),
            NetworkSpec::new(
                Shape::flat(2048),
                vec![LayerSpec::fc(1024, Activation::Sigmoid)],
            )
            .unwrap(),
        ),
        "ddr3" => (
            SystemConfig::ddr3(),
            NetworkSpec::new(
                Shape::new(1, 96, 96),
                vec![LayerSpec::conv(16, 7, Activation::Tanh)],
            )
            .unwrap(),
        ),
        _ => (
            SystemConfig::paper(false),
            NetworkSpec::new(
                Shape::new(1, 128, 128),
                vec![LayerSpec::conv(16, 7, Activation::Tanh)],
            )
            .unwrap(),
        ),
    };
    for skip in [false, true] {
        eprintln!("=== {which} skip={skip} ===");
        let t0 = Instant::now();
        let (report, _, tel) = run_inference_mode(cfg.clone(), &spec, 14, Some(skip));
        eprintln!(
            "total {:.2}s for {} cycles ({} skipped in {} jumps)",
            t0.elapsed().as_secs_f64(),
            report.total_cycles(),
            tel.skipped_cycles,
            tel.horizon_jumps,
        );
    }
}
