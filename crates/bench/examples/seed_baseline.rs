//! Re-pins the `bench_sim` seed-baseline constants: times the five
//! `BENCH_sim` workloads through the plain naive loop (`run_inference`,
//! which honours `NEUROCUBE_NO_SKIP` but defaults to the process-wide
//! setting) and prints cycles-per-second for each.
//!
//! To regenerate `SEED_NAIVE_CPS` in `benches/bench_sim.rs` on new
//! reference hardware: check out the pinned seed commit in a worktree,
//! copy this file in (the workload table predates it there), build
//! `--release`, run with `NEUROCUBE_NO_SKIP=1`, and transcribe the `cps`
//! column. Run it on the current tree to sanity-check the naive column
//! of `BENCH_sim.json` instead.

use neurocube::SystemConfig;
use neurocube_bench::run_inference;
use neurocube_fixed::Activation;
use neurocube_nn::{LayerSpec, NetworkSpec, Shape};
use std::time::Instant;

fn conv_net(input: usize, maps: usize, kernel: usize) -> NetworkSpec {
    NetworkSpec::new(
        Shape::new(1, input, input),
        vec![LayerSpec::conv(maps, kernel, Activation::Tanh)],
    )
    .expect("geometry fits")
}

fn fc_net(inputs: usize, hidden: usize) -> NetworkSpec {
    NetworkSpec::new(
        Shape::flat(inputs),
        vec![LayerSpec::fc(hidden, Activation::Sigmoid)],
    )
    .expect("geometry fits")
}

fn main() {
    let workloads: Vec<(&str, SystemConfig, NetworkSpec, u64)> = vec![
        (
            "fig14_conv_k3_dup",
            SystemConfig::paper(true),
            conv_net(128, 16, 3),
            14,
        ),
        (
            "fig14_conv_k7_nodup",
            SystemConfig::paper(false),
            conv_net(128, 16, 7),
            14,
        ),
        (
            "fig14_fc_2048x1024_dup",
            SystemConfig::paper(true),
            fc_net(2048, 1024),
            14,
        ),
        (
            "fig15_conv96_hmc16",
            SystemConfig::hmc_with_channels(16),
            conv_net(96, 16, 7),
            15,
        ),
        (
            "fig15_conv96_ddr3",
            SystemConfig::ddr3(),
            conv_net(96, 16, 7),
            15,
        ),
    ];
    for (name, cfg, spec, seed) in workloads {
        let start = Instant::now();
        let report = run_inference(cfg, &spec, seed);
        let secs = start.elapsed().as_secs_f64();
        let cycles = report.total_cycles();
        println!(
            "{name} cycles={cycles} secs={secs:.3} cps={:.0}",
            cycles as f64 / secs
        );
    }
}
