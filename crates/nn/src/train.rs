//! Fixed-point training (backpropagation) reference.
//!
//! The paper evaluates Neurocube for *training* as well as inference
//! (Fig. 13) — backpropagation's backward and weight-update passes are the
//! same three-nested-loop MAC pattern as the forward pass, so the PNGs can
//! be programmed with them (§VI). This module is the functional reference:
//! plain backprop over the canonical connection map, with gradients
//! accumulated in the MAC's wide-register semantics and all values quantized
//! to `Q1.7.8`.

use crate::connections::{self, WeightRef};
use crate::exec::Executor;
use crate::tensor::Tensor;
use neurocube_fixed::Q88;

/// Mean squared error between two equal-length tensors, in double precision
/// (reporting only — gradients are computed in fixed point).
///
/// # Panics
///
/// Panics if the tensors have different lengths.
pub fn mse_loss(output: &Tensor, target: &Tensor) -> f64 {
    assert_eq!(output.len(), target.len(), "loss operand lengths differ");
    let n = output.len() as f64;
    output
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&o, &t)| (o.to_f64() - t.to_f64()).powi(2))
        .sum::<f64>()
        / n
}

/// Hyper-parameters of the trainer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrainerConfig {
    /// SGD learning rate (quantized; updates smaller than `1/256 / lr`
    /// round to zero, so pick rates of `1/16` and up for the fixed-point
    /// format to make progress).
    pub learning_rate: Q88,
}

impl Default for TrainerConfig {
    fn default() -> TrainerConfig {
        TrainerConfig {
            learning_rate: Q88::from_f64(0.25),
        }
    }
}

/// Wide-register gradient accumulator mirroring the MAC datapath: products
/// enter at `Q2.14.16` scale and the running sum is clamped to the 32-bit
/// register range after every addition, exactly like
/// [`MacUnit`](neurocube_fixed::MacUnit).
#[derive(Clone, Copy, Debug, Default)]
struct WideAcc(i64);

impl WideAcc {
    #[inline]
    fn add_product(&mut self, a: Q88, b: Q88) {
        self.0 += i64::from(a.wide_product(b));
        self.0 = self.0.clamp(i64::from(i32::MIN), i64::from(i32::MAX));
    }

    #[inline]
    fn result(self) -> Q88 {
        Q88::from_wide(self.0)
    }
}

/// SGD trainer over an [`Executor`].
///
/// # Examples
///
/// ```
/// use neurocube_nn::{Trainer, TrainerConfig, Executor, NetworkSpec, LayerSpec, Shape, Tensor};
/// use neurocube_fixed::{Activation, Q88};
///
/// let net = NetworkSpec::new(Shape::flat(1), vec![LayerSpec::fc(1, Activation::Identity)])?;
/// let exec = Executor::new(net, vec![vec![Q88::ZERO]]);
/// let mut trainer = Trainer::new(exec, TrainerConfig::default());
/// let x = Tensor::from_flat(vec![Q88::ONE]);
/// let y = Tensor::from_flat(vec![Q88::from_f64(0.5)]);
/// let first = trainer.step(&x, &y);
/// for _ in 0..50 { trainer.step(&x, &y); }
/// let last = trainer.step(&x, &y);
/// assert!(last < first);
/// # Ok::<(), neurocube_nn::NetworkError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Trainer {
    exec: Executor,
    cfg: TrainerConfig,
    steps: u64,
}

impl Trainer {
    /// Wraps an executor for training.
    pub fn new(exec: Executor, cfg: TrainerConfig) -> Trainer {
        Trainer {
            exec,
            cfg,
            steps: 0,
        }
    }

    /// The wrapped executor (current weights).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Unwraps the trained executor.
    pub fn into_executor(self) -> Executor {
        self.exec
    }

    /// Training steps performed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Quantized activation derivative at a pre-activation value.
    fn act_derivative(&self, layer: usize, pre: Q88) -> Q88 {
        let act = self.exec.spec().layers()[layer].activation();
        Q88::from_f64(act.ideal_derivative(pre.to_f64()))
    }

    /// One SGD step on `(input, target)`. Returns the *pre-update* MSE loss.
    ///
    /// # Panics
    ///
    /// Panics if `target` does not match the network's output length.
    pub fn step(&mut self, input: &Tensor, target: &Tensor) -> f64 {
        let spec = self.exec.spec().clone();
        assert_eq!(
            target.len(),
            spec.output_shape().len(),
            "target length mismatch"
        );
        let detailed = self.exec.forward_detailed(input);
        let output = &detailed.last().expect("non-empty").1;
        let loss = mse_loss(output, target);

        // Output-layer delta: (o - t) ⊙ act'(pre).
        let last = spec.depth() - 1;
        let mut delta: Vec<Q88> = (0..output.len())
            .map(|j| {
                let err = output.at(j).saturating_sub(target.at(j));
                err.saturating_mul(self.act_derivative(last, detailed[last].0.at(j)))
            })
            .collect();

        // Backward through the layers.
        for i in (0..spec.depth()).rev() {
            let in_shape = spec.layer_input(i);
            let layer = spec.layers()[i];
            let n_conn = layer.connections_per_neuron(in_shape);
            let out_len = spec.layer_output(i).len();
            let n_weights = spec.weights_per_layer()[i];
            let layer_input: &Tensor = if i == 0 { input } else { &detailed[i - 1].1 };

            let mut d_w = vec![WideAcc::default(); n_weights];
            let mut d_x = vec![WideAcc::default(); in_shape.len()];
            #[allow(clippy::needless_range_loop)] // neuron is also an index into the connection map
            for neuron in 0..out_len {
                let d = delta[neuron];
                if d.is_zero() {
                    continue;
                }
                for k in 0..n_conn {
                    let conn = connections::resolve(&layer, in_shape, neuron, k);
                    let w = connections::weight_value(conn, &self.exec.params()[i]);
                    d_x[conn.input_index].add_product(w, d);
                    if let WeightRef::Stored(widx) = conn.weight {
                        d_w[widx].add_product(layer_input.at(conn.input_index), d);
                    }
                }
            }

            // Weight update: w -= lr * dW.
            let lr = self.cfg.learning_rate;
            let weights = &mut self.exec.params_mut()[i];
            for (w, g) in weights.iter_mut().zip(&d_w) {
                *w = w.saturating_sub(lr.saturating_mul(g.result()));
            }

            // Propagate delta to the previous layer.
            if i > 0 {
                let prev_pre = &detailed[i - 1].0;
                delta = (0..in_shape.len())
                    .map(|idx| {
                        d_x[idx]
                            .result()
                            .saturating_mul(self.act_derivative(i - 1, prev_pre.at(idx)))
                    })
                    .collect();
            }
        }

        self.steps += 1;
        loss
    }

    /// Runs `epochs` passes over a dataset of `(input, target)` pairs;
    /// returns the mean loss of each epoch.
    pub fn fit(&mut self, data: &[(Tensor, Tensor)], epochs: usize) -> Vec<f64> {
        (0..epochs)
            .map(|_| {
                let total: f64 = data.iter().map(|(x, y)| self.step(x, y)).sum();
                total / data.len() as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{LayerSpec, Shape};
    use crate::network::NetworkSpec;
    use neurocube_fixed::Activation;

    #[test]
    fn linear_neuron_learns_half() {
        let spec =
            NetworkSpec::new(Shape::flat(1), vec![LayerSpec::fc(1, Activation::Identity)]).unwrap();
        let exec = Executor::new(spec, vec![vec![Q88::ZERO]]);
        let mut t = Trainer::new(
            exec,
            TrainerConfig {
                learning_rate: Q88::from_f64(0.5),
            },
        );
        let data = [
            (
                Tensor::from_flat(vec![Q88::ONE]),
                Tensor::from_flat(vec![Q88::from_f64(0.5)]),
            ),
            (
                Tensor::from_flat(vec![Q88::from_f64(-1.0)]),
                Tensor::from_flat(vec![Q88::from_f64(-0.5)]),
            ),
        ];
        let losses = t.fit(&data, 30);
        assert!(losses[29] < losses[0] / 10.0, "losses: {losses:?}");
        let w = t.executor().params()[0][0].to_f64();
        assert!((w - 0.5).abs() < 0.05, "learned w = {w}");
    }

    #[test]
    fn sigmoid_classifier_separates_two_points() {
        let spec =
            NetworkSpec::new(Shape::flat(2), vec![LayerSpec::fc(1, Activation::Sigmoid)]).unwrap();
        let exec = Executor::new(spec, vec![vec![Q88::ZERO, Q88::ZERO]]);
        let mut t = Trainer::new(
            exec,
            TrainerConfig {
                learning_rate: Q88::from_f64(1.0),
            },
        );
        let pos = Tensor::from_flat(vec![Q88::from_f64(2.0), Q88::from_f64(1.0)]);
        let neg = Tensor::from_flat(vec![Q88::from_f64(-2.0), Q88::from_f64(-1.0)]);
        let one = Tensor::from_flat(vec![Q88::ONE]);
        let zero = Tensor::from_flat(vec![Q88::ZERO]);
        let data = [(pos.clone(), one), (neg.clone(), zero)];
        t.fit(&data, 60);
        let p = t.executor().predict(&pos).at(0).to_f64();
        let n = t.executor().predict(&neg).at(0).to_f64();
        assert!(p > 0.8, "positive point scored {p}");
        assert!(n < 0.2, "negative point scored {n}");
    }

    #[test]
    fn two_layer_mlp_reduces_loss() {
        let spec = NetworkSpec::new(
            Shape::flat(3),
            vec![
                LayerSpec::fc(4, Activation::Tanh),
                LayerSpec::fc(2, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let params = spec.init_params(11, 0.5);
        let exec = Executor::new(spec, params);
        let mut t = Trainer::new(exec, TrainerConfig::default());
        let x = Tensor::from_flat(vec![Q88::ONE, Q88::from_f64(-0.5), Q88::from_f64(0.25)]);
        let y = Tensor::from_flat(vec![Q88::ONE, Q88::ZERO]);
        let first = t.step(&x, &y);
        for _ in 0..80 {
            t.step(&x, &y);
        }
        let last = t.step(&x, &y);
        assert!(last < first * 0.5, "first {first}, last {last}");
        assert_eq!(t.steps(), 82);
    }

    #[test]
    fn conv_layer_gradients_flow() {
        let spec = NetworkSpec::new(
            Shape::new(1, 4, 4),
            vec![
                LayerSpec::conv(1, 3, Activation::Tanh),
                LayerSpec::fc(1, Activation::Identity),
            ],
        )
        .unwrap();
        let params = spec.init_params(5, 0.25);
        let exec = Executor::new(spec, params);
        let mut t = Trainer::new(
            exec,
            TrainerConfig {
                learning_rate: Q88::from_f64(0.25),
            },
        );
        let mut x = Tensor::zeros(1, 4, 4);
        for i in 0..16 {
            x.set_at(i, Q88::from_f64(if i % 2 == 0 { 1.0 } else { -1.0 }));
        }
        let y = Tensor::from_flat(vec![Q88::from_f64(1.0)]);
        let before = t.executor().params()[0].clone();
        let first = t.step(&x, &y);
        // Conv weights actually moved.
        assert_ne!(&before, &t.executor().params()[0]);
        for _ in 0..40 {
            t.step(&x, &y);
        }
        let last = t.step(&x, &y);
        assert!(last < first, "first {first}, last {last}");
    }

    #[test]
    fn pooling_layers_have_no_weights_but_pass_gradients() {
        let spec = NetworkSpec::new(
            Shape::new(1, 4, 4),
            vec![
                LayerSpec::AvgPool { size: 2 },
                LayerSpec::fc(1, Activation::Identity),
            ],
        )
        .unwrap();
        let params = spec.init_params(2, 0.25);
        let exec = Executor::new(spec, params);
        let mut t = Trainer::new(exec, TrainerConfig::default());
        let x = Tensor::from_vec(1, 4, 4, (0..16).map(|i| Q88::from_int(i % 3)).collect());
        let y = Tensor::from_flat(vec![Q88::from_f64(2.0)]);
        let first = t.step(&x, &y);
        for _ in 0..30 {
            t.step(&x, &y);
        }
        let last = t.step(&x, &y);
        assert!(last < first);
        assert!(t.executor().params()[0].is_empty());
    }

    #[test]
    fn mse_loss_basics() {
        let a = Tensor::from_flat(vec![Q88::ONE, Q88::ZERO]);
        let b = Tensor::from_flat(vec![Q88::ZERO, Q88::ZERO]);
        assert_eq!(mse_loss(&a, &a), 0.0);
        assert_eq!(mse_loss(&a, &b), 0.5);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mse_rejects_mismatch() {
        let a = Tensor::from_flat(vec![Q88::ONE]);
        let b = Tensor::from_flat(vec![Q88::ONE, Q88::ZERO]);
        let _ = mse_loss(&a, &b);
    }
}
