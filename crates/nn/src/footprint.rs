//! Memory-requirement analysis — the paper's Fig. 1.
//!
//! Fig. 1 plots the memory a network needs (all layer states + all synaptic
//! weights, 16-bit each) against what 1 mm² of on-chip SRAM or eDRAM can
//! hold, to argue that on-chip caches cannot scale to realistic scene
//! labeling resolutions — the motivation for 3D-stacked DRAM.
//!
//! Density constants are derived from the papers the figure cites:
//! a 14 nm FinFET SRAM with 0.050 µm²/bitcell \[11\] and a 22 nm eDRAM with
//! 0.0174 µm²/cell \[12\]; both normalized to one square millimetre of cell
//! array.

use crate::network::NetworkSpec;

/// Bytes of SRAM per mm² (14 nm FinFET, 0.050 µm² per bitcell \[11\]):
/// `1 mm² / 0.050 µm² = 20 Mbit = 2.5 MB`.
pub const SRAM_BYTES_PER_MM2: u64 = 2_500_000;

/// Bytes of eDRAM per mm² (22 nm tri-gate, 0.0174 µm² per cell \[12\]):
/// `1 mm² / 0.0174 µm² ≈ 57.5 Mbit ≈ 7.18 MB`.
pub const EDRAM_BYTES_PER_MM2: u64 = 7_183_908;

/// Memory needed by one network, split the way Fig. 1 counts it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Footprint {
    /// Bytes for all neuron states, input volume included (16-bit each).
    pub state_bytes: u64,
    /// Bytes for all stored synaptic weights (16-bit each).
    pub weight_bytes: u64,
}

impl Footprint {
    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.state_bytes + self.weight_bytes
    }

    /// Total in mebibytes (for report tables).
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Square millimetres of on-chip SRAM this network would occupy.
    pub fn sram_mm2(&self) -> f64 {
        self.total_bytes() as f64 / SRAM_BYTES_PER_MM2 as f64
    }

    /// Square millimetres of on-chip eDRAM this network would occupy.
    pub fn edram_mm2(&self) -> f64 {
        self.total_bytes() as f64 / EDRAM_BYTES_PER_MM2 as f64
    }

    /// Whether the network fits in `mm2` of SRAM.
    pub fn fits_sram(&self, mm2: f64) -> bool {
        self.sram_mm2() <= mm2
    }

    /// Whether the network fits in `mm2` of eDRAM.
    pub fn fits_edram(&self, mm2: f64) -> bool {
        self.edram_mm2() <= mm2
    }
}

/// Computes the Fig. 1 footprint of a network.
pub fn of_network(net: &NetworkSpec) -> Footprint {
    let state_bytes: u64 = net.shapes().iter().map(|s| s.state_bytes() as u64).sum();
    let weight_bytes: u64 = net.weights_per_layer().iter().map(|&n| n as u64 * 2).sum();
    Footprint {
        state_bytes,
        weight_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn densities_match_cited_cells() {
        // 1e6 µm² per mm², 8 bits per byte.
        assert_eq!(SRAM_BYTES_PER_MM2, (1e6 / 0.050 / 8.0) as u64);
        // eDRAM constant is within 1% of the cell-math value.
        let ideal = 1e6 / 0.0174 / 8.0;
        assert!((EDRAM_BYTES_PER_MM2 as f64 - ideal).abs() / ideal < 0.01);
    }

    #[test]
    fn scene_labeling_exceeds_1mm2_sram_at_paper_resolution() {
        // The core claim of Fig. 1: realistic resolutions don't fit on chip.
        let fp = of_network(&workloads::scene_labeling_paper());
        assert!(!fp.fits_sram(1.0), "{} MiB should not fit", fp.total_mib());
        assert!(!fp.fits_edram(1.0));
    }

    #[test]
    fn footprint_grows_with_resolution() {
        let small = of_network(&workloads::scene_labeling(64, 64).unwrap());
        let large = of_network(&workloads::scene_labeling(240, 320).unwrap());
        assert!(large.total_bytes() > 4 * small.total_bytes());
    }

    #[test]
    fn mnist_mlp_fits_edram_but_shows_weight_dominance() {
        let fp = of_network(&workloads::mnist_mlp(100));
        // MLP footprints are weight-dominated (dense matrices).
        assert!(fp.weight_bytes > 10 * fp.state_bytes);
        assert!(fp.fits_edram(1.0));
    }

    #[test]
    fn totals_add_up() {
        let fp = Footprint {
            state_bytes: 100,
            weight_bytes: 28,
        };
        assert_eq!(fp.total_bytes(), 128);
        assert!(fp.sram_mm2() > 0.0);
        assert!(fp.edram_mm2() < fp.sram_mm2());
    }
}
