//! Neural-network substrate for the Neurocube reproduction.
//!
//! The Neurocube executes neural networks whose structure is known a priori
//! (paper §II-C): the host compiler lays the layers out in HMC vaults and
//! programs the neurosequence generators per layer. This crate is the
//! *network-level* substrate everything else builds on:
//!
//! * [`Tensor`] — a `(channels, height, width)` array of `Q1.7.8` values,
//! * [`LayerSpec`] / [`NetworkSpec`] — layer and network descriptions with
//!   shape arithmetic, connection/operation/weight counting,
//! * [`connections`] — the **canonical connection ordering** shared by the
//!   functional executor and the PNG address generator, so the cycle-level
//!   simulator can be validated bit-for-bit against the reference,
//! * [`Executor`] — a functional fixed-point forward/backward executor
//!   using exactly the MAC and LUT semantics of `neurocube-fixed`,
//! * [`GraphSpec`] — arbitrary layer DAGs (branches, residual `Add`,
//!   `Concat`) with validation and a topological schedule; [`NetworkSpec`]
//!   embeds as the trivial linear graph,
//! * [`workloads`] — the paper's evaluation networks: the 7-layer scene
//!   labeling ConvNN (Fig. 9) and an MNIST-style MLP, with procedural data
//!   generators replacing the original datasets (see `DESIGN.md`),
//! * [`recurrent`] — the §VI extension: RNNs as unfolded MLPs, bit-exact
//!   against the direct recurrence,
//! * [`footprint`] — the memory-requirement analysis behind Fig. 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connections;
mod exec;
pub mod footprint;
mod graph;
mod layer;
mod network;
pub mod params_io;
pub mod recurrent;
mod tensor;
mod train;
pub mod workloads;

pub use exec::Executor;
pub use graph::{GraphBuilder, GraphError, GraphNode, GraphOp, GraphSource, GraphSpec, INPUT};
pub use layer::{ConvConnectivity, LayerSpec, Shape};
pub use network::{NetworkError, NetworkSpec};
pub use recurrent::RecurrentSpec;
pub use tensor::Tensor;
pub use train::{mse_loss, Trainer, TrainerConfig};
