//! A three-dimensional fixed-point tensor.

use neurocube_fixed::Q88;
use std::fmt;

/// A `(channels, height, width)` tensor of `Q1.7.8` values, stored row-major
/// with channel as the outermost dimension — the same flat neuron indexing
/// the Neurocube compiler uses when laying a layer's states out in DRAM
/// (Eq. 5: `Addr = targ_y × W + targ_x + Addr_last`, extended with a channel
/// stride).
///
/// # Examples
///
/// ```
/// use neurocube_nn::Tensor;
/// use neurocube_fixed::Q88;
///
/// let mut t = Tensor::zeros(3, 4, 5);
/// t.set(2, 3, 4, Q88::ONE);
/// assert_eq!(t.get(2, 3, 4), Q88::ONE);
/// assert_eq!(t.len(), 60);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Tensor {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<Q88>,
}

impl Tensor {
    /// An all-zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Tensor {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dimensions must be nonzero"
        );
        Tensor {
            channels,
            height,
            width,
            data: vec![Q88::ZERO; channels * height * width],
        }
    }

    /// Builds a tensor from a flat value slice in canonical order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * height * width`.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<Q88>) -> Tensor {
        assert_eq!(
            data.len(),
            channels * height * width,
            "data length does not match shape"
        );
        assert!(channels > 0 && height > 0 && width > 0);
        Tensor {
            channels,
            height,
            width,
            data,
        }
    }

    /// Builds a 1-channel, 1-row tensor from a vector (for MLP layers).
    pub fn from_flat(data: Vec<Q88>) -> Tensor {
        let n = data.len();
        Tensor::from_vec(n, 1, 1, data)
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the tensor has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of `(c, y, x)`.
    #[inline]
    pub fn index_of(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        (c * self.height + y) * self.width + x
    }

    /// Reads element `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds via the indexing assertion) if out of range.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> Q88 {
        self.data[self.index_of(c, y, x)]
    }

    /// Writes element `(c, y, x)`.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: Q88) {
        let i = self.index_of(c, y, x);
        self.data[i] = v;
    }

    /// Reads by flat index.
    #[inline]
    pub fn at(&self, i: usize) -> Q88 {
        self.data[i]
    }

    /// Writes by flat index.
    #[inline]
    pub fn set_at(&mut self, i: usize, v: Q88) {
        self.data[i] = v;
    }

    /// The flat value slice in canonical order.
    pub fn as_slice(&self) -> &[Q88] {
        &self.data
    }

    /// Mutable flat value slice.
    pub fn as_mut_slice(&mut self) -> &mut [Q88] {
        &mut self.data
    }

    /// Index of the maximum element (first on ties) — the classifier argmax.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for i in 1..self.data.len() {
            if self.data[i] > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Serializes to little-endian bytes in canonical order — the exact DRAM
    /// image the host loads into the cube.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 2);
        for q in &self.data {
            out.extend_from_slice(&q.to_bits().to_le_bytes());
        }
        out
    }

    /// Deserializes from the byte layout of [`to_le_bytes`](Self::to_le_bytes).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != 2 * channels * height * width`.
    pub fn from_le_bytes(channels: usize, height: usize, width: usize, bytes: &[u8]) -> Tensor {
        assert_eq!(bytes.len(), channels * height * width * 2, "byte length");
        let data = bytes
            .chunks_exact(2)
            .map(|c| Q88::from_bits(i16::from_le_bytes([c[0], c[1]])))
            .collect();
        Tensor::from_vec(channels, height, width, data)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor({}x{}x{}, first={:?})",
            self.channels,
            self.height,
            self.width,
            self.data.first()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_indexing_is_channel_major() {
        let t = Tensor::zeros(2, 3, 4);
        assert_eq!(t.index_of(0, 0, 0), 0);
        assert_eq!(t.index_of(0, 0, 3), 3);
        assert_eq!(t.index_of(0, 1, 0), 4);
        assert_eq!(t.index_of(1, 0, 0), 12);
        assert_eq!(t.index_of(1, 2, 3), 23);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(2, 2, 2);
        t.set(1, 1, 1, Q88::from_f64(-2.5));
        assert_eq!(t.get(1, 1, 1), Q88::from_f64(-2.5));
        assert_eq!(t.at(7), Q88::from_f64(-2.5));
    }

    #[test]
    fn argmax_finds_first_max() {
        let t = Tensor::from_flat(vec![
            Q88::from_f64(0.5),
            Q88::from_f64(2.0),
            Q88::from_f64(2.0),
            Q88::from_f64(-3.0),
        ]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn byte_roundtrip() {
        let mut t = Tensor::zeros(2, 2, 2);
        for i in 0..8 {
            t.set_at(i, Q88::from_f64(i as f64 - 4.0));
        }
        let bytes = t.to_le_bytes();
        assert_eq!(bytes.len(), 16);
        let back = Tensor::from_le_bytes(2, 2, 2, &bytes);
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_shape() {
        let _ = Tensor::from_vec(2, 2, 2, vec![Q88::ZERO; 7]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_rejected() {
        let _ = Tensor::zeros(0, 1, 1);
    }
}
