//! Layer DAGs: named nodes, branches, residual `Add` and `Concat`.
//!
//! A [`GraphSpec`] generalizes the linear [`NetworkSpec`] to an arbitrary
//! directed acyclic graph of layers. Every node consumes the **channel
//! concatenation** of its listed inputs (a single input is the volume
//! itself) and is one of:
//!
//! * a [`LayerSpec`] node — executed on the cube exactly like a linear
//!   layer (residual `Add` lowers to [`LayerSpec::Eltwise`] over the
//!   concatenation of its summands),
//! * a [`GraphOp::Concat`] node — pure data placement: the graph compiler
//!   aliases the parts into one channel-stacked volume, so concatenation
//!   costs no cycles at all.
//!
//! Validation enforces the rules the vault-level compiler relies on (see
//! `DESIGN.md` §10): unique names, acyclicity, a single sink, spatially
//! compatible concatenation parts, no flat (fully-connected-produced)
//! volumes feeding spatial operators, and at most one aliasing consumer
//! per produced volume. Construction topologically sorts the nodes, so
//! [`GraphSpec::nodes`] *is* the execution schedule.

use crate::layer::{LayerSpec, Shape};
use crate::network::NetworkSpec;
use neurocube_fixed::{Activation, Q88};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// The reserved input name: a node listing `"input"` reads the graph input.
pub const INPUT: &str = "input";

/// What a graph node does with its (concatenated) input volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphOp {
    /// Execute a layer on the cube.
    Layer(LayerSpec),
    /// Channel-stack the inputs without computing anything; the compiler
    /// lowers this to pure volume aliasing.
    Concat,
}

/// One node of a layer DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphNode {
    /// Unique node name (also the report label).
    pub name: String,
    /// Producer names (or [`INPUT`]), concatenated channel-wise in order.
    pub inputs: Vec<String>,
    /// The operation applied to the concatenated input.
    pub op: GraphOp,
}

/// A resolved input reference of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphSource {
    /// The graph input volume.
    Input,
    /// The output volume of the node at this (topological) index.
    Node(usize),
}

/// Errors produced when validating a [`GraphSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// Two nodes share a name, or a node is named [`INPUT`].
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A node references an input name that no node produces.
    UnknownInput {
        /// The referencing node.
        node: String,
        /// The unresolved name.
        input: String,
    },
    /// A node lists no inputs.
    NoInputs {
        /// The offending node.
        node: String,
    },
    /// The graph contains a dependency cycle.
    Cycle,
    /// More than one node has no consumer; the graph output is ambiguous.
    MultipleSinks {
        /// The names of the competing sinks.
        names: Vec<String>,
    },
    /// Concatenation parts disagree on spatial extent.
    ConcatShapeMismatch {
        /// The concatenating node.
        node: String,
    },
    /// A flat (1×1) volume cannot be channel-concatenated: flat layouts
    /// are round-robin partitioned and have no common spatial tiling to
    /// alias into.
    FlatConcat {
        /// The concatenating node.
        node: String,
    },
    /// The same producer appears twice in one concatenation — a volume
    /// cannot occupy two channel slices of a single buffer.
    DuplicateOperand {
        /// The concatenating node.
        node: String,
        /// The repeated producer.
        input: String,
    },
    /// A produced volume feeds more than one concatenating consumer; it
    /// can be aliased into at most one stacked buffer.
    SharedConcatInput {
        /// The multiply-aliased producer (or [`INPUT`]).
        input: String,
    },
    /// A `Concat` output cannot itself be a part of another concatenation
    /// (the alias chain would need recursive re-slicing).
    NestedConcat {
        /// The outer concatenating node.
        node: String,
    },
    /// A residual `Add` requires equally shaped summands.
    AddShapeMismatch {
        /// The adding node.
        node: String,
    },
    /// A spatial operator (conv/pool/add) cannot consume a flat volume
    /// (the same restriction the linear layout enforces for layers after
    /// a fully connected one).
    SpatialAfterFlat {
        /// The offending node.
        node: String,
    },
    /// A layer cannot be applied to its (concatenated) input volume.
    BadGeometry {
        /// The offending node.
        node: String,
        /// The input volume it was offered.
        input: Shape,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => f.write_str("graph has no nodes"),
            GraphError::DuplicateName { name } => {
                write!(f, "duplicate or reserved node name {name:?}")
            }
            GraphError::UnknownInput { node, input } => {
                write!(f, "node {node:?} references unknown input {input:?}")
            }
            GraphError::NoInputs { node } => write!(f, "node {node:?} lists no inputs"),
            GraphError::Cycle => f.write_str("graph contains a dependency cycle"),
            GraphError::MultipleSinks { names } => {
                write!(f, "graph has multiple sinks: {names:?}")
            }
            GraphError::ConcatShapeMismatch { node } => {
                write!(f, "node {node:?} concatenates spatially incompatible parts")
            }
            GraphError::FlatConcat { node } => {
                write!(f, "node {node:?} concatenates a flat (1x1) volume")
            }
            GraphError::DuplicateOperand { node, input } => {
                write!(f, "node {node:?} lists {input:?} twice")
            }
            GraphError::SharedConcatInput { input } => {
                write!(f, "{input:?} feeds more than one concatenating consumer")
            }
            GraphError::NestedConcat { node } => {
                write!(f, "node {node:?} concatenates another concatenation")
            }
            GraphError::AddShapeMismatch { node } => {
                write!(f, "node {node:?} adds unequally shaped summands")
            }
            GraphError::SpatialAfterFlat { node } => {
                write!(
                    f,
                    "node {node:?} applies a spatial operator to a flat volume"
                )
            }
            GraphError::BadGeometry { node, input } => {
                write!(f, "node {node:?} does not fit its input volume {input}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated, topologically ordered layer DAG.
///
/// # Examples
///
/// ```
/// use neurocube_nn::{GraphBuilder, LayerSpec, Shape, INPUT};
/// use neurocube_fixed::Activation;
///
/// let mut g = GraphBuilder::new(Shape::new(1, 12, 12));
/// g.layer("stem", INPUT, LayerSpec::conv(4, 3, Activation::Tanh));
/// g.layer("branch", "stem", LayerSpec::conv(4, 1, Activation::Identity));
/// g.add("res", &["stem", "branch"], Activation::ReLU);
/// g.layer("head", "res", LayerSpec::fc(6, Activation::Sigmoid));
/// let graph = g.build()?;
/// assert_eq!(graph.output_shape(), Shape::flat(6));
/// # Ok::<(), neurocube_nn::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSpec {
    input: Shape,
    /// Nodes in topological (= execution) order.
    nodes: Vec<GraphNode>,
    /// Resolved input references per node.
    sources: Vec<Vec<GraphSource>>,
    /// Effective (concatenated) input shape per node.
    in_shapes: Vec<Shape>,
    /// Output shape per node.
    out_shapes: Vec<Shape>,
    /// Index of the single sink.
    output: usize,
}

/// `true` when a shape is flat — stored round-robin, like FC outputs.
fn is_flat(s: Shape) -> bool {
    s.height == 1 && s.width == 1
}

impl GraphSpec {
    /// Validates and topologically sorts a node list into a graph.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] found (see the variant docs for
    /// the individual rules).
    pub fn new(input: Shape, nodes: Vec<GraphNode>) -> Result<GraphSpec, GraphError> {
        if nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut index = HashMap::new();
        for (i, node) in nodes.iter().enumerate() {
            if node.name == INPUT || index.insert(node.name.clone(), i).is_some() {
                return Err(GraphError::DuplicateName {
                    name: node.name.clone(),
                });
            }
        }
        // Resolve references (in the given order).
        let mut raw_sources = Vec::with_capacity(nodes.len());
        for node in &nodes {
            if node.inputs.is_empty() {
                return Err(GraphError::NoInputs {
                    node: node.name.clone(),
                });
            }
            let mut srcs = Vec::with_capacity(node.inputs.len());
            for input_name in &node.inputs {
                if input_name == INPUT {
                    srcs.push(GraphSource::Input);
                } else {
                    let &i = index
                        .get(input_name)
                        .ok_or_else(|| GraphError::UnknownInput {
                            node: node.name.clone(),
                            input: input_name.clone(),
                        })?;
                    srcs.push(GraphSource::Node(i));
                }
            }
            raw_sources.push(srcs);
        }
        // Kahn's algorithm for the topological schedule.
        let n = nodes.len();
        let mut indegree = vec![0usize; n];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, srcs) in raw_sources.iter().enumerate() {
            for src in srcs {
                if let GraphSource::Node(j) = *src {
                    indegree[i] += 1;
                    consumers[j].push(i);
                }
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        ready.reverse(); // pop() takes the lowest original index first
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i);
            for &c in &consumers[i] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    // Keep the schedule stable: insert sorted by original
                    // index so ties resolve in declaration order.
                    let pos = ready.iter().rposition(|&r| r > c).map_or(0, |p| p + 1);
                    ready.insert(pos, c);
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::Cycle);
        }
        // Permute into topological order and remap references.
        let mut position = vec![0usize; n];
        for (pos, &old) in order.iter().enumerate() {
            position[old] = pos;
        }
        let mut sorted_nodes = Vec::with_capacity(n);
        let mut sources = Vec::with_capacity(n);
        for &old in &order {
            sorted_nodes.push(nodes[old].clone());
            sources.push(
                raw_sources[old]
                    .iter()
                    .map(|s| match *s {
                        GraphSource::Input => GraphSource::Input,
                        GraphSource::Node(j) => GraphSource::Node(position[j]),
                    })
                    .collect::<Vec<_>>(),
            );
        }
        let nodes = sorted_nodes;

        // Shape propagation plus the aliasing rules.
        let mut in_shapes: Vec<Shape> = Vec::with_capacity(n);
        let mut out_shapes: Vec<Shape> = Vec::with_capacity(n);
        let mut alias_consumers: HashMap<GraphSourceKey, usize> = HashMap::new();
        for (i, node) in nodes.iter().enumerate() {
            let parts: Vec<Shape> = sources[i]
                .iter()
                .map(|s| match *s {
                    GraphSource::Input => input,
                    GraphSource::Node(j) => out_shapes[j],
                })
                .collect();
            let aliases = matches!(node.op, GraphOp::Concat) || parts.len() > 1;
            if aliases {
                let mut seen = Vec::new();
                for (src, part) in sources[i].iter().zip(&parts) {
                    if seen.contains(src) {
                        let input_name = source_name(&nodes, *src);
                        return Err(GraphError::DuplicateOperand {
                            node: node.name.clone(),
                            input: input_name,
                        });
                    }
                    seen.push(*src);
                    if is_flat(*part) {
                        return Err(GraphError::FlatConcat {
                            node: node.name.clone(),
                        });
                    }
                    if let GraphSource::Node(j) = *src {
                        if matches!(nodes[j].op, GraphOp::Concat) {
                            return Err(GraphError::NestedConcat {
                                node: node.name.clone(),
                            });
                        }
                    }
                    if (part.height, part.width) != (parts[0].height, parts[0].width) {
                        return Err(GraphError::ConcatShapeMismatch {
                            node: node.name.clone(),
                        });
                    }
                    let key = GraphSourceKey::from(*src);
                    let count = alias_consumers.entry(key).or_insert(0);
                    *count += 1;
                    if *count > 1 {
                        return Err(GraphError::SharedConcatInput {
                            input: source_name(&nodes, *src),
                        });
                    }
                }
            }
            let in_shape = if parts.len() == 1 {
                parts[0]
            } else {
                Shape::new(
                    parts.iter().map(|p| p.channels).sum(),
                    parts[0].height,
                    parts[0].width,
                )
            };
            let out_shape = match node.op {
                GraphOp::Concat => in_shape,
                GraphOp::Layer(spec) => {
                    if let LayerSpec::Eltwise { terms, .. } = spec {
                        if parts.len() > 1
                            && (parts.len() != terms
                                || parts.iter().any(|p| p.channels != parts[0].channels))
                        {
                            return Err(GraphError::AddShapeMismatch {
                                node: node.name.clone(),
                            });
                        }
                    }
                    if !spec.weights_stream() && is_flat(in_shape) {
                        return Err(GraphError::SpatialAfterFlat {
                            node: node.name.clone(),
                        });
                    }
                    spec.output_shape(in_shape).ok_or(GraphError::BadGeometry {
                        node: node.name.clone(),
                        input: in_shape,
                    })?
                }
            };
            in_shapes.push(in_shape);
            out_shapes.push(out_shape);
        }

        // Exactly one sink.
        let mut consumed = vec![false; n];
        for srcs in &sources {
            for src in srcs {
                if let GraphSource::Node(j) = *src {
                    consumed[j] = true;
                }
            }
        }
        let sinks: Vec<usize> = (0..n).filter(|&i| !consumed[i]).collect();
        if sinks.len() != 1 {
            return Err(GraphError::MultipleSinks {
                names: sinks.iter().map(|&i| nodes[i].name.clone()).collect(),
            });
        }

        Ok(GraphSpec {
            input,
            nodes,
            sources,
            in_shapes,
            out_shapes,
            output: sinks[0],
        })
    }

    /// The trivial linear embedding of a [`NetworkSpec`]: layer `i`
    /// becomes node `"l{i}"` consuming its predecessor. Parameter
    /// initialization and per-node weight counts match the linear spec
    /// exactly, so every existing workload runs unchanged as a graph.
    ///
    /// # Panics
    ///
    /// Panics if the network violates a graph rule the linear stack only
    /// catches at layout time (a spatial layer consuming a flat volume).
    pub fn linear(net: &NetworkSpec) -> GraphSpec {
        let nodes = net
            .layers()
            .iter()
            .enumerate()
            .map(|(i, &layer)| GraphNode {
                name: format!("l{i}"),
                inputs: vec![if i == 0 {
                    INPUT.to_string()
                } else {
                    format!("l{}", i - 1)
                }],
                op: GraphOp::Layer(layer),
            })
            .collect();
        GraphSpec::new(net.input_shape(), nodes).expect("linear embedding of a valid network")
    }

    /// The graph input volume.
    pub fn input_shape(&self) -> Shape {
        self.input
    }

    /// The output volume (the single sink's output).
    pub fn output_shape(&self) -> Shape {
        self.out_shapes[self.output]
    }

    /// The nodes in topological (execution) order.
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// Node count (including `Concat` nodes, which execute no cycles).
    pub fn depth(&self) -> usize {
        self.nodes.len()
    }

    /// Index of the single sink node.
    pub fn output_node(&self) -> usize {
        self.output
    }

    /// Resolved input references of node `i`.
    pub fn node_sources(&self, i: usize) -> &[GraphSource] {
        &self.sources[i]
    }

    /// Effective (channel-concatenated) input shape of node `i`.
    pub fn node_input_shape(&self, i: usize) -> Shape {
        self.in_shapes[i]
    }

    /// Output shape of node `i`.
    pub fn node_output_shape(&self, i: usize) -> Shape {
        self.out_shapes[i]
    }

    /// `true` when node `i` aliases its inputs into a stacked buffer
    /// (a `Concat` node, or any node with more than one input).
    pub fn aliases_inputs(&self, i: usize) -> bool {
        matches!(self.nodes[i].op, GraphOp::Concat) || self.sources[i].len() > 1
    }

    /// Executable (non-`Concat`) node indices, in schedule order.
    pub fn exec_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| matches!(self.nodes[i].op, GraphOp::Layer(_)))
            .collect()
    }

    /// Stored weights per node (0 for `Concat` and weight-less layers).
    pub fn weights_per_node(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .map(|i| match self.nodes[i].op {
                GraphOp::Layer(spec) => spec.weight_count(self.in_shapes[i]),
                GraphOp::Concat => 0,
            })
            .collect()
    }

    /// MAC count per node for one inference (0 for `Concat`).
    pub fn macs_per_node(&self) -> Vec<u64> {
        (0..self.nodes.len())
            .map(|i| match self.nodes[i].op {
                GraphOp::Layer(spec) => spec.macs(self.in_shapes[i]).expect("validated"),
                GraphOp::Concat => 0,
            })
            .collect()
    }

    /// Total arithmetic operations (2 per MAC) for one inference.
    pub fn total_ops(&self) -> u64 {
        self.macs_per_node().iter().sum::<u64>() * 2
    }

    /// Random parameter initialization, one weight array per node:
    /// uniform in `[-scale, scale]` quantized to `Q1.7.8`, deterministic
    /// in `seed`. For [`GraphSpec::linear`] graphs this reproduces
    /// [`NetworkSpec::init_params`] bit for bit.
    pub fn init_params(&self, seed: u64, scale: f64) -> Vec<Vec<Q88>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        self.weights_per_node()
            .iter()
            .map(|&n| {
                (0..n)
                    .map(|_| Q88::from_f64(rng.random_range(-scale..=scale)))
                    .collect()
            })
            .collect()
    }
}

impl fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "input {}", self.input)?;
        for (i, node) in self.nodes.iter().enumerate() {
            let op = match node.op {
                GraphOp::Layer(spec) => spec.to_string(),
                GraphOp::Concat => "concat".to_string(),
            };
            writeln!(
                f,
                "{}: {op} ({}) -> {}",
                node.name,
                node.inputs.join(", "),
                self.out_shapes[i]
            )?;
        }
        Ok(())
    }
}

/// Hashable key for a [`GraphSource`] (indices after topological sort).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum GraphSourceKey {
    Input,
    Node(usize),
}

impl From<GraphSource> for GraphSourceKey {
    fn from(s: GraphSource) -> GraphSourceKey {
        match s {
            GraphSource::Input => GraphSourceKey::Input,
            GraphSource::Node(i) => GraphSourceKey::Node(i),
        }
    }
}

fn source_name(nodes: &[GraphNode], src: GraphSource) -> String {
    match src {
        GraphSource::Input => INPUT.to_string(),
        GraphSource::Node(j) => nodes[j].name.clone(),
    }
}

/// Incremental construction of a [`GraphSpec`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    input: Shape,
    nodes: Vec<GraphNode>,
}

impl GraphBuilder {
    /// Starts a graph with the given input volume.
    pub fn new(input: Shape) -> GraphBuilder {
        GraphBuilder {
            input,
            nodes: Vec::new(),
        }
    }

    /// Adds a single-input layer node.
    pub fn layer(&mut self, name: &str, from: &str, spec: LayerSpec) -> &mut GraphBuilder {
        self.nodes.push(GraphNode {
            name: name.to_string(),
            inputs: vec![from.to_string()],
            op: GraphOp::Layer(spec),
        });
        self
    }

    /// Adds a channel concatenation node.
    pub fn concat(&mut self, name: &str, from: &[&str]) -> &mut GraphBuilder {
        self.nodes.push(GraphNode {
            name: name.to_string(),
            inputs: from.iter().map(|s| s.to_string()).collect(),
            op: GraphOp::Concat,
        });
        self
    }

    /// Adds a residual element-wise sum of the listed producers.
    pub fn add(&mut self, name: &str, from: &[&str], activation: Activation) -> &mut GraphBuilder {
        self.nodes.push(GraphNode {
            name: name.to_string(),
            inputs: from.iter().map(|s| s.to_string()).collect(),
            op: GraphOp::Layer(LayerSpec::Eltwise {
                terms: from.len(),
                activation,
            }),
        });
        self
    }

    /// Validates and builds the graph.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] found.
    pub fn build(self) -> Result<GraphSpec, GraphError> {
        GraphSpec::new(self.input, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn residual() -> GraphSpec {
        workloads::residual_toy()
    }

    #[test]
    fn residual_toy_validates() {
        let g = residual();
        assert_eq!(g.input_shape(), Shape::new(1, 12, 12));
        assert_eq!(g.output_shape(), Shape::flat(6));
        assert_eq!(g.depth(), 5);
        // The add node sees the 8-channel concatenation of its summands.
        let res = g
            .nodes()
            .iter()
            .position(|n| n.name == "res")
            .expect("res node");
        assert_eq!(g.node_input_shape(res), Shape::new(8, 10, 10));
        assert_eq!(g.node_output_shape(res), Shape::new(4, 10, 10));
        assert!(g.aliases_inputs(res));
        assert_eq!(g.exec_nodes().len(), 5);
    }

    #[test]
    fn concat_toy_validates() {
        let g = workloads::concat_toy();
        let cat = g
            .nodes()
            .iter()
            .position(|n| n.name == "cat")
            .expect("cat node");
        assert_eq!(g.node_output_shape(cat), Shape::new(5, 10, 10));
        assert_eq!(g.exec_nodes().len(), 3); // concat executes nothing
    }

    #[test]
    fn linear_embedding_matches_network() {
        let net = workloads::tiny_convnet();
        let g = GraphSpec::linear(&net);
        assert_eq!(g.depth(), net.depth());
        assert_eq!(g.output_shape(), net.output_shape());
        for i in 0..net.depth() {
            assert_eq!(g.node_input_shape(i), net.layer_input(i));
            assert_eq!(g.node_output_shape(i), net.layer_output(i));
        }
        assert_eq!(g.init_params(7, 0.25), net.init_params(7, 0.25));
        assert_eq!(g.total_ops(), net.total_ops());
    }

    #[test]
    fn nodes_are_topologically_sorted() {
        // Declared out of order: the sink first.
        let g = GraphSpec::new(
            Shape::new(1, 8, 8),
            vec![
                GraphNode {
                    name: "head".into(),
                    inputs: vec!["stem".into()],
                    op: GraphOp::Layer(LayerSpec::fc(3, Activation::Sigmoid)),
                },
                GraphNode {
                    name: "stem".into(),
                    inputs: vec![INPUT.into()],
                    op: GraphOp::Layer(LayerSpec::conv(2, 3, Activation::Tanh)),
                },
            ],
        )
        .unwrap();
        assert_eq!(g.nodes()[0].name, "stem");
        assert_eq!(g.nodes()[1].name, "head");
        assert_eq!(g.node_sources(1), &[GraphSource::Node(0)]);
        assert_eq!(g.output_node(), 1);
    }

    #[test]
    fn cycle_is_rejected() {
        let err = GraphSpec::new(
            Shape::new(1, 8, 8),
            vec![
                GraphNode {
                    name: "a".into(),
                    inputs: vec!["b".into()],
                    op: GraphOp::Layer(LayerSpec::conv(1, 3, Activation::Tanh)),
                },
                GraphNode {
                    name: "b".into(),
                    inputs: vec!["a".into()],
                    op: GraphOp::Layer(LayerSpec::conv(1, 3, Activation::Tanh)),
                },
            ],
        )
        .unwrap_err();
        assert_eq!(err, GraphError::Cycle);
    }

    #[test]
    fn validation_rejects_bad_graphs() {
        let input = Shape::new(1, 12, 12);
        assert_eq!(
            GraphSpec::new(input, vec![]).unwrap_err(),
            GraphError::Empty
        );

        let mut g = GraphBuilder::new(input);
        g.layer("x", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.layer("x", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::DuplicateName { .. }
        ));

        let mut g = GraphBuilder::new(input);
        g.layer("x", "ghost", LayerSpec::conv(2, 3, Activation::Tanh));
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::UnknownInput { .. }
        ));

        // Two sinks.
        let mut g = GraphBuilder::new(input);
        g.layer("a", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.layer("b", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::MultipleSinks { .. }
        ));

        // Concat of spatially incompatible parts.
        let mut g = GraphBuilder::new(input);
        g.layer("a", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.layer("b", INPUT, LayerSpec::conv(2, 5, Activation::Tanh));
        g.concat("cat", &["a", "b"]);
        g.layer("head", "cat", LayerSpec::fc(2, Activation::Sigmoid));
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::ConcatShapeMismatch { .. }
        ));

        // Concat of a flat (FC-produced) volume.
        let mut g = GraphBuilder::new(input);
        g.layer("a", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.layer("b", "a", LayerSpec::fc(4, Activation::Sigmoid));
        g.concat("cat", &["a", "b"]);
        g.layer("head", "cat", LayerSpec::fc(2, Activation::Sigmoid));
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::FlatConcat { .. }
        ));

        // The same producer aliased into two concats.
        let mut g = GraphBuilder::new(input);
        g.layer("a", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.layer("b", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.concat("c1", &["a", "b"]);
        g.layer("h1", "c1", LayerSpec::fc(2, Activation::Sigmoid));
        g.layer("c", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.add("c2", &["a", "c"], Activation::ReLU);
        g.layer("h2", "c2", LayerSpec::fc(2, Activation::Sigmoid));
        g.concat("join", &["h1", "h2"]); // also flat, but shared fires first
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::SharedConcatInput { .. }
        ));

        // A concat feeding another concat.
        let mut g = GraphBuilder::new(input);
        g.layer("a", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.layer("b", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.concat("c1", &["a", "b"]);
        g.layer("c", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.concat("c2", &["c1", "c"]);
        g.layer("head", "c2", LayerSpec::fc(2, Activation::Sigmoid));
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::NestedConcat { .. }
        ));

        // Residual add of unequal summands.
        let mut g = GraphBuilder::new(input);
        g.layer("a", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.layer("b", INPUT, LayerSpec::conv(4, 3, Activation::Tanh));
        g.add("res", &["a", "b"], Activation::ReLU);
        g.layer("head", "res", LayerSpec::fc(2, Activation::Sigmoid));
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::AddShapeMismatch { .. }
        ));

        // A duplicated operand.
        let mut g = GraphBuilder::new(input);
        g.layer("a", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
        g.add("res", &["a", "a"], Activation::ReLU);
        g.layer("head", "res", LayerSpec::fc(2, Activation::Sigmoid));
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::DuplicateOperand { .. }
        ));

        // A spatial operator on a flat volume.
        let mut g = GraphBuilder::new(input);
        g.layer("a", INPUT, LayerSpec::fc(9, Activation::Tanh));
        g.layer("b", "a", LayerSpec::AvgPool { size: 1 });
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::SpatialAfterFlat { .. }
        ));

        // A layer that does not fit.
        let mut g = GraphBuilder::new(input);
        g.layer("a", INPUT, LayerSpec::conv(1, 20, Activation::Tanh));
        assert!(matches!(
            g.build().unwrap_err(),
            GraphError::BadGeometry { .. }
        ));
    }

    #[test]
    fn display_lists_nodes() {
        let s = residual().to_string();
        assert!(s.contains("input 1x12x12"));
        assert!(s.contains("res: add x2"));
        assert!(s.contains("head: fc -> 6"));
    }

    #[test]
    fn errors_display() {
        for err in [
            GraphError::Empty,
            GraphError::Cycle,
            GraphError::DuplicateName { name: "x".into() },
            GraphError::SharedConcatInput { input: "x".into() },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
