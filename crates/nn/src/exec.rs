//! Functional fixed-point executor — the bit-exact reference for the
//! cycle-level simulator.

use crate::connections::{self, weight_value};
use crate::network::NetworkSpec;
use crate::tensor::Tensor;
use neurocube_fixed::{AccumulatorWidth, ActivationLut, MacUnit, Q88};

/// Evaluates a network functionally with exactly the arithmetic the
/// Neurocube hardware performs: `Q1.7.8` operands, MAC accumulation of the
/// configured width, activations through the PNG's LUT, connections walked
/// in canonical order.
///
/// Because the cycle-level simulator in `neurocube` (the core crate) shares
/// every one of those components, `Executor::forward` must produce
/// *bit-identical* outputs — the strongest correctness check in the test
/// suite.
///
/// # Examples
///
/// ```
/// use neurocube_nn::{Executor, NetworkSpec, LayerSpec, Shape, Tensor};
/// use neurocube_fixed::Activation;
///
/// let net = NetworkSpec::new(
///     Shape::new(1, 4, 4),
///     vec![LayerSpec::fc(2, Activation::Sigmoid)],
/// )?;
/// let params = net.init_params(1, 0.25);
/// let exec = Executor::new(net, params);
/// let out = exec.forward(&Tensor::zeros(1, 4, 4));
/// assert_eq!(out.last().unwrap().len(), 2);
/// # Ok::<(), neurocube_nn::NetworkError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Executor {
    spec: NetworkSpec,
    params: Vec<Vec<Q88>>,
    width: AccumulatorWidth,
    luts: Vec<ActivationLut>,
}

impl Executor {
    /// Builds an executor over `spec` with the given per-layer weights and
    /// the default wide MAC accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `params` does not match the spec's per-layer weight counts.
    pub fn new(spec: NetworkSpec, params: Vec<Vec<Q88>>) -> Executor {
        Executor::with_accumulator(spec, params, AccumulatorWidth::Wide32)
    }

    /// Builds an executor with an explicit MAC accumulator width (the
    /// Table II ablation).
    ///
    /// # Panics
    ///
    /// Panics if `params` does not match the spec's per-layer weight counts.
    pub fn with_accumulator(
        spec: NetworkSpec,
        params: Vec<Vec<Q88>>,
        width: AccumulatorWidth,
    ) -> Executor {
        let counts = spec.weights_per_layer();
        assert_eq!(params.len(), counts.len(), "one weight array per layer");
        for (i, (p, &n)) in params.iter().zip(&counts).enumerate() {
            assert_eq!(p.len(), n, "layer {i} expects {n} weights");
        }
        let luts = spec
            .layers()
            .iter()
            .map(|l| ActivationLut::new(l.activation()))
            .collect();
        Executor {
            spec,
            params,
            width,
            luts,
        }
    }

    /// The network description.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Per-layer weights.
    pub fn params(&self) -> &[Vec<Q88>] {
        &self.params
    }

    /// Mutable per-layer weights (used by the trainer).
    pub fn params_mut(&mut self) -> &mut [Vec<Q88>] {
        &mut self.params
    }

    /// The MAC accumulator width in use.
    pub fn accumulator(&self) -> AccumulatorWidth {
        self.width
    }

    /// The activation LUT of layer `i`.
    pub fn lut(&self, i: usize) -> &ActivationLut {
        &self.luts[i]
    }

    /// Evaluates one layer: returns `(pre_activation, post_activation)`.
    ///
    /// # Panics
    ///
    /// Panics if `input`'s shape disagrees with the spec.
    pub fn forward_layer(&self, i: usize, input: &Tensor) -> (Tensor, Tensor) {
        let in_shape = self.spec.layer_input(i);
        assert_eq!(
            (input.channels(), input.height(), input.width()),
            (in_shape.channels, in_shape.height, in_shape.width),
            "layer {i} input shape mismatch"
        );
        let out_shape = self.spec.layer_output(i);
        let layer = &self.spec.layers()[i];
        let n_conn = layer.connections_per_neuron(in_shape);
        let weights = &self.params[i];
        let lut = &self.luts[i];

        let mut pre = Tensor::zeros(out_shape.channels, out_shape.height, out_shape.width);
        let mut post = pre.clone();
        for neuron in 0..out_shape.len() {
            let mut mac = MacUnit::new(self.width);
            for k in 0..n_conn {
                let conn = connections::resolve(layer, in_shape, neuron, k);
                mac.accumulate(weight_value(conn, weights), input.at(conn.input_index));
            }
            let y = mac.result();
            pre.set_at(neuron, y);
            post.set_at(neuron, lut.apply(y));
        }
        (pre, post)
    }

    /// Runs the whole network; returns every layer's *post-activation*
    /// output (index `i` = output of layer `i`).
    pub fn forward(&self, input: &Tensor) -> Vec<Tensor> {
        let mut outputs = Vec::with_capacity(self.spec.depth());
        let mut cur = input.clone();
        for i in 0..self.spec.depth() {
            let (_, post) = self.forward_layer(i, &cur);
            cur = post.clone();
            outputs.push(post);
        }
        outputs
    }

    /// Runs the whole network keeping pre-activation values too
    /// (needed by the trainer): returns `(pre, post)` per layer.
    pub fn forward_detailed(&self, input: &Tensor) -> Vec<(Tensor, Tensor)> {
        let mut outputs: Vec<(Tensor, Tensor)> = Vec::with_capacity(self.spec.depth());
        for i in 0..self.spec.depth() {
            let (pre, post) = {
                let cur = outputs.last().map_or(input, |(_, post)| post);
                self.forward_layer(i, cur)
            };
            outputs.push((pre, post));
        }
        outputs
    }

    /// Convenience: the final output tensor.
    pub fn predict(&self, input: &Tensor) -> Tensor {
        self.forward(input).pop().expect("validated non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{LayerSpec, Shape};
    use neurocube_fixed::Activation;

    #[test]
    fn identity_fc_with_unit_diagonal_passes_through() {
        let spec =
            NetworkSpec::new(Shape::flat(3), vec![LayerSpec::fc(3, Activation::Identity)]).unwrap();
        // Identity weight matrix.
        let mut w = vec![Q88::ZERO; 9];
        for i in 0..3 {
            w[i * 3 + i] = Q88::ONE;
        }
        let exec = Executor::new(spec, vec![w]);
        let input = Tensor::from_flat(vec![
            Q88::from_f64(1.5),
            Q88::from_f64(-2.25),
            Q88::from_f64(0.125),
        ]);
        assert_eq!(exec.predict(&input), input);
    }

    #[test]
    fn avgpool_averages() {
        let spec =
            NetworkSpec::new(Shape::new(1, 2, 2), vec![LayerSpec::AvgPool { size: 2 }]).unwrap();
        let exec = Executor::new(spec, vec![vec![]]);
        let input = Tensor::from_vec(
            1,
            2,
            2,
            vec![
                Q88::from_f64(1.0),
                Q88::from_f64(2.0),
                Q88::from_f64(3.0),
                Q88::from_f64(6.0),
            ],
        );
        let out = exec.predict(&input);
        assert_eq!(out.at(0), Q88::from_f64(3.0));
    }

    #[test]
    fn conv_matches_hand_computation() {
        let spec = NetworkSpec::new(
            Shape::new(1, 3, 3),
            vec![LayerSpec::conv(1, 2, Activation::Identity)],
        )
        .unwrap();
        // Kernel [[1, 0.5], [0, -1]].
        let w = vec![
            Q88::from_f64(1.0),
            Q88::from_f64(0.5),
            Q88::from_f64(0.0),
            Q88::from_f64(-1.0),
        ];
        let exec = Executor::new(spec, vec![w]);
        let input = Tensor::from_vec(1, 3, 3, (1..=9).map(Q88::from_int).collect());
        let out = exec.predict(&input);
        // Window at (0,0): 1*1 + 2*0.5 + 4*0 + 5*(-1) = -3.
        assert_eq!(out.get(0, 0, 0), Q88::from_f64(-3.0));
        // Window at (1,1): 5*1 + 6*0.5 + 8*0 + 9*(-1) = -1.
        assert_eq!(out.get(0, 1, 1), Q88::from_f64(-1.0));
    }

    #[test]
    fn relu_clips_negative_preactivations() {
        let spec =
            NetworkSpec::new(Shape::flat(2), vec![LayerSpec::fc(1, Activation::ReLU)]).unwrap();
        let exec = Executor::new(spec, vec![vec![Q88::from_f64(-1.0), Q88::from_f64(-1.0)]]);
        let out = exec.predict(&Tensor::from_flat(vec![Q88::ONE, Q88::ONE]));
        assert_eq!(out.at(0), Q88::ZERO);
    }

    #[test]
    fn forward_detailed_keeps_preactivations() {
        let spec =
            NetworkSpec::new(Shape::flat(1), vec![LayerSpec::fc(1, Activation::Sigmoid)]).unwrap();
        let exec = Executor::new(spec, vec![vec![Q88::from_f64(2.0)]]);
        let d = exec.forward_detailed(&Tensor::from_flat(vec![Q88::ONE]));
        assert_eq!(d[0].0.at(0), Q88::from_f64(2.0)); // pre
        assert!(d[0].1.at(0) > Q88::from_f64(0.85)); // post = sigmoid(2)
    }

    #[test]
    fn multi_layer_pipeline_shapes() {
        let spec = NetworkSpec::new(
            Shape::new(1, 6, 6),
            vec![
                LayerSpec::conv(2, 3, Activation::ReLU),
                LayerSpec::AvgPool { size: 2 },
                LayerSpec::fc(5, Activation::Sigmoid),
            ],
        )
        .unwrap();
        let params = spec.init_params(3, 0.3);
        let exec = Executor::new(spec, params);
        let outs = exec.forward(&Tensor::zeros(1, 6, 6));
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].channels(), 2);
        assert_eq!(outs[1].height(), 2);
        assert_eq!(outs[2].len(), 5);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn wrong_param_counts_rejected() {
        let spec =
            NetworkSpec::new(Shape::flat(2), vec![LayerSpec::fc(1, Activation::Identity)]).unwrap();
        let _ = Executor::new(spec, vec![vec![Q88::ONE]]); // needs 2
    }

    #[test]
    fn accumulator_width_is_observable() {
        let spec =
            NetworkSpec::new(Shape::flat(2), vec![LayerSpec::fc(1, Activation::Identity)]).unwrap();
        let exec = Executor::with_accumulator(
            spec,
            vec![vec![Q88::ONE, Q88::ONE]],
            AccumulatorWidth::Narrow16,
        );
        assert_eq!(exec.accumulator(), AccumulatorWidth::Narrow16);
    }
}
