//! The paper's evaluation workloads, plus procedural data generators.
//!
//! The original evaluation uses the Stanford-background scene-labeling
//! dataset \[9\] and MNIST \[10\]; neither ships with this reproduction, so the
//! generators here synthesize inputs with comparable statistics (smooth RGB
//! scenes, stroke-like digit patterns). Throughput depends only on layer
//! geometry, so the figures are unaffected; functional/training tests use
//! the synthetic data. Documented as a substitution in `DESIGN.md`.

use crate::graph::{GraphBuilder, GraphSpec, INPUT};
use crate::layer::{LayerSpec, Shape};
use crate::network::NetworkSpec;
use crate::tensor::Tensor;
use neurocube_fixed::{Activation, Q88};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Number of scene-labeling output classes (the Stanford background dataset
/// has 8 semantic classes).
pub const SCENE_CLASSES: usize = 8;

/// Hidden width of the scene-labeling classifier's first fully connected
/// layer (reconstructed; see `DESIGN.md` — the paper states the first FC
/// layer dominates operation count, which holds for 256; 256 outputs also
/// give every PE a full 16-neuron MAC group, matching the paper's
/// near-constant per-layer throughput in Fig. 12(c)).
pub const SCENE_HIDDEN: usize = 256;

/// The paper's 7-layer scene-labeling ConvNN (Fig. 9) for an arbitrary
/// input resolution: conv7×7/16 → pool2 → conv7×7/64 → pool2 → conv7×7/256
/// → fc/128 → fc/8.
///
/// # Errors
///
/// Returns [`NetworkError`](crate::NetworkError) if the input is too small
/// for the three 7×7 convolution/pooling stages (minimum ≈ 46×46).
pub fn scene_labeling(height: usize, width: usize) -> Result<NetworkSpec, crate::NetworkError> {
    NetworkSpec::new(
        Shape::new(3, height, width),
        vec![
            LayerSpec::conv(16, 7, Activation::Tanh),
            LayerSpec::AvgPool { size: 2 },
            LayerSpec::conv(64, 7, Activation::Tanh),
            LayerSpec::AvgPool { size: 2 },
            LayerSpec::conv(256, 7, Activation::Tanh),
            LayerSpec::fc(SCENE_HIDDEN, Activation::Tanh),
            LayerSpec::fc(SCENE_CLASSES, Activation::Sigmoid),
        ],
    )
}

/// The inference evaluation point: 320×240 RGB (Fig. 9, §VI).
pub fn scene_labeling_paper() -> NetworkSpec {
    scene_labeling(240, 320).expect("paper geometry is valid")
}

/// The training evaluation point: 64×64 input (§VI-2, Fig. 13).
pub fn scene_labeling_training() -> NetworkSpec {
    scene_labeling(64, 64).expect("training geometry is valid")
}

/// An MNIST-style multi-layer perceptron: 28×28 input, one hidden layer,
/// 10 classes (the MLP workload of Fig. 1 / Table III's DaDianNao row uses
/// 784 input neurons).
pub fn mnist_mlp(hidden: usize) -> NetworkSpec {
    NetworkSpec::new(
        Shape::new(1, 28, 28),
        vec![
            LayerSpec::fc(hidden, Activation::Sigmoid),
            LayerSpec::fc(10, Activation::Sigmoid),
        ],
    )
    .expect("MLP geometry is valid")
}

/// A tiny ConvNN for unit/integration tests (seconds, not minutes, at cycle
/// level): conv3×3/4 → pool2 → fc/6 → fc/3 on a 1×12×12 input.
pub fn tiny_convnet() -> NetworkSpec {
    NetworkSpec::new(
        Shape::new(1, 12, 12),
        vec![
            LayerSpec::conv(4, 3, Activation::Tanh),
            LayerSpec::AvgPool { size: 2 },
            LayerSpec::fc(6, Activation::Tanh),
            LayerSpec::fc(3, Activation::Sigmoid),
        ],
    )
    .expect("tiny geometry is valid")
}

/// A ResNet-style residual toy graph on a 1×12×12 input: a 3×3 conv stem,
/// a 1×1 conv branch on the stem, their element-wise sum, a 2×2 pool and
/// a fully connected head. Small enough for cycle-level tests, but it
/// exercises every graph feature the compiler pipelines: a branch, a
/// residual `Add` over an aliased channel-stacked buffer, and a spatial
/// consumer of the sum.
pub fn residual_toy() -> GraphSpec {
    let mut g = GraphBuilder::new(Shape::new(1, 12, 12));
    g.layer("stem", INPUT, LayerSpec::conv(4, 3, Activation::Tanh));
    g.layer(
        "branch",
        "stem",
        LayerSpec::conv(4, 1, Activation::Identity),
    );
    g.add("res", &["stem", "branch"], Activation::ReLU);
    g.layer("pool", "res", LayerSpec::AvgPool { size: 2 });
    g.layer("head", "pool", LayerSpec::fc(6, Activation::Sigmoid));
    g.build().expect("residual toy graph is valid")
}

/// An Inception-style concatenation toy graph on a 1×12×12 input: two
/// parallel 3×3 convolutions over the input, channel-concatenated (pure
/// aliasing, no cycles) and classified by a fully connected head.
pub fn concat_toy() -> GraphSpec {
    let mut g = GraphBuilder::new(Shape::new(1, 12, 12));
    g.layer("left", INPUT, LayerSpec::conv(2, 3, Activation::Tanh));
    g.layer("right", INPUT, LayerSpec::conv(3, 3, Activation::Sigmoid));
    g.concat("cat", &["left", "right"]);
    g.layer("head", "cat", LayerSpec::fc(8, Activation::Sigmoid));
    g.build().expect("concat toy graph is valid")
}

/// A cellular-neural-network-style workload (§VI: "programming a locally
/// connected layer like Cellular Neural Network is similar to programming
/// the 2D convolutional layer"): `iterations` identical locally connected
/// (3×3 conv) stages over one feature plane, unrolled the way the host
/// would program successive CNN time steps.
///
/// # Errors
///
/// Returns an error if the plane is too small for the unrolled stages
/// (each valid 3×3 stage shrinks the plane by 2).
pub fn cellular(
    height: usize,
    width: usize,
    iterations: usize,
) -> Result<NetworkSpec, crate::NetworkError> {
    let layers = (0..iterations.max(1))
        .map(|_| LayerSpec::conv(1, 3, Activation::Tanh))
        .collect();
    NetworkSpec::new(Shape::new(1, height, width), layers)
}

/// Generates a smooth synthetic RGB "scene": per-channel low-frequency
/// gradients plus bounded noise, values in `[-1, 1]`. Deterministic in
/// `seed`.
pub fn synthetic_scene(seed: u64, height: usize, width: usize) -> Tensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = Tensor::zeros(3, height, width);
    for c in 0..3 {
        // Random plane gradient per channel.
        let gx: f64 = rng.random_range(-1.0..1.0);
        let gy: f64 = rng.random_range(-1.0..1.0);
        let bias: f64 = rng.random_range(-0.25..0.25);
        for y in 0..height {
            for x in 0..width {
                let v = bias
                    + gx * (x as f64 / width as f64 - 0.5)
                    + gy * (y as f64 / height as f64 - 0.5)
                    + rng.random_range(-0.1..0.1);
                t.set(c, y, x, Q88::from_f64(v.clamp(-1.0, 1.0)));
            }
        }
    }
    t
}

/// Generates a 28×28 "digit": a class-dependent arrangement of strokes so
/// that each class is visually distinct and linearly separable enough for a
/// small MLP to learn. Returns the image; the label is the `class` argument.
///
/// # Panics
///
/// Panics if `class >= 10`.
pub fn synthetic_digit(seed: u64, class: usize) -> Tensor {
    assert!(class < 10, "digit class must be 0..10");
    let mut rng = SmallRng::seed_from_u64(seed ^ (class as u64).wrapping_mul(0x9E37_79B9));
    let mut t = Tensor::zeros(1, 28, 28);
    // Class determines stroke geometry: a horizontal band, a vertical band
    // and a diagonal, with positions derived from the class index.
    let row = 3 + (class * 5) % 22;
    let col = 3 + (class * 7) % 22;
    let jitter = |rng: &mut SmallRng| rng.random_range(-1i64..=1);
    for i in 0..28i64 {
        let r = (row as i64 + jitter(&mut rng)).clamp(0, 27) as usize;
        let c = (col as i64 + jitter(&mut rng)).clamp(0, 27) as usize;
        t.set(0, r, i as usize, Q88::ONE);
        t.set(0, i as usize, c, Q88::ONE);
        if class % 2 == 1 {
            let d = ((i + class as i64) % 28) as usize;
            t.set(0, d, d, Q88::from_f64(0.75));
        }
    }
    // Sprinkle noise.
    for _ in 0..30 {
        let y: usize = rng.random_range(0..28);
        let x: usize = rng.random_range(0..28);
        t.set(0, y, x, Q88::from_f64(rng.random_range(0.0..0.5)));
    }
    t
}

/// An *irregularly connected* layer, per §V-A-2: "a fully-connected model
/// can be used to represent irregular connections between neurons by
/// storing a synapse weight of '0' for missing connections." Generates a
/// random adjacency with the given `density` and returns the network, its
/// dense weights (zeros on missing edges) and the adjacency list (for
/// reference checking).
///
/// # Panics
///
/// Panics if `density` is outside `(0, 1]` or a dimension is zero.
pub fn irregular_fc(
    inputs: usize,
    outputs: usize,
    density: f64,
    seed: u64,
) -> (NetworkSpec, Vec<Vec<Q88>>, Vec<Vec<usize>>) {
    assert!(inputs > 0 && outputs > 0, "dimensions must be nonzero");
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let net = NetworkSpec::new(
        Shape::flat(inputs),
        vec![LayerSpec::fc(outputs, Activation::Identity)],
    )
    .expect("FC geometry is valid");
    let mut weights = vec![Q88::ZERO; outputs * inputs];
    let mut adjacency = vec![Vec::new(); outputs];
    for (o, adj) in adjacency.iter_mut().enumerate() {
        for i in 0..inputs {
            if rng.random_range(0.0..1.0) < density {
                weights[o * inputs + i] = Q88::from_f64(rng.random_range(-0.5..0.5));
                adj.push(i);
            }
        }
        // Guarantee at least one connection so no neuron is isolated.
        if adj.is_empty() {
            let i = rng.random_range(0..inputs);
            weights[o * inputs + i] = Q88::from_f64(0.25);
            adj.push(i);
        }
    }
    (net, vec![weights], adjacency)
}

/// One-hot target vector for `class` out of `n` classes.
pub fn one_hot(class: usize, n: usize) -> Tensor {
    let mut v = vec![Q88::ZERO; n];
    v[class] = Q88::ONE;
    Tensor::from_flat(v)
}

/// A labelled synthetic digit dataset: `per_class` examples of each of the
/// ten classes, as `(image, one-hot target)` pairs. Deterministic in `seed`.
pub fn digit_dataset(seed: u64, per_class: usize) -> Vec<(Tensor, Tensor)> {
    let mut data = Vec::with_capacity(per_class * 10);
    for class in 0..10 {
        for i in 0..per_class {
            data.push((
                synthetic_digit(seed.wrapping_add(i as u64 * 131), class),
                one_hot(class, 10),
            ));
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_network_shapes_match_fig9() {
        let net = scene_labeling_paper();
        let shapes = net.shapes();
        assert_eq!(shapes[0], Shape::new(3, 240, 320));
        assert_eq!(shapes[1], Shape::new(16, 234, 314)); // 73,476 per map
        assert_eq!(shapes[2], Shape::new(16, 117, 157));
        assert_eq!(shapes[3], Shape::new(64, 111, 151));
        assert_eq!(shapes[4], Shape::new(64, 55, 75));
        assert_eq!(shapes[5], Shape::new(256, 49, 69));
        assert_eq!(shapes[6], Shape::flat(SCENE_HIDDEN));
        assert_eq!(shapes[7], Shape::flat(SCENE_CLASSES));
    }

    #[test]
    fn first_fc_dominates_op_count() {
        // §VI-1: "The three convolutional layers and the first fully
        // connected layer dominates the number of operations."
        let net = scene_labeling_paper();
        let macs = net.macs_per_layer();
        let fc1 = macs[5];
        for (i, &m) in macs.iter().enumerate() {
            if i != 5 {
                assert!(fc1 >= m, "layer {i} has {m} MACs > first FC's {fc1}");
            }
        }
    }

    #[test]
    fn training_network_fits_64x64() {
        let net = scene_labeling_training();
        assert_eq!(net.shapes()[5], Shape::new(256, 5, 5));
        assert_eq!(net.output_shape(), Shape::flat(SCENE_CLASSES));
    }

    #[test]
    fn mnist_mlp_has_784_inputs() {
        let net = mnist_mlp(100);
        assert_eq!(net.input_shape().len(), 784);
        assert_eq!(net.weights_per_layer(), vec![784 * 100, 1000]);
    }

    #[test]
    fn scene_generator_is_deterministic_and_bounded() {
        let a = synthetic_scene(3, 16, 16);
        let b = synthetic_scene(3, 16, 16);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_scene(4, 16, 16));
        for &v in a.as_slice() {
            assert!(v.to_f64().abs() <= 1.0);
        }
    }

    #[test]
    fn digits_differ_by_class() {
        let d0 = synthetic_digit(1, 0);
        let d1 = synthetic_digit(1, 1);
        assert_ne!(d0, d1);
        assert_eq!(synthetic_digit(1, 3), synthetic_digit(1, 3));
    }

    #[test]
    fn dataset_is_labelled_one_hot() {
        let data = digit_dataset(9, 2);
        assert_eq!(data.len(), 20);
        for (i, (_, target)) in data.iter().enumerate() {
            assert_eq!(target.len(), 10);
            assert_eq!(target.argmax(), i / 2);
        }
    }

    #[test]
    #[should_panic(expected = "class must be")]
    fn digit_class_bounds() {
        let _ = synthetic_digit(0, 10);
    }

    #[test]
    fn irregular_fc_matches_sparse_reference() {
        use crate::exec::Executor;
        let (net, params, adjacency) = irregular_fc(24, 10, 0.3, 9);
        let exec = Executor::new(net, params.clone());
        let input = Tensor::from_flat(
            (0..24)
                .map(|i| Q88::from_f64(i as f64 / 16.0 - 0.7))
                .collect(),
        );
        let dense = exec.predict(&input);
        // Sparse reference: accumulate only the existing edges, in edge
        // order (zero-weight products cannot change the accumulator, so
        // the dense FC is exactly the sparse sum).
        for (o, adj) in adjacency.iter().enumerate() {
            let mut mac = neurocube_fixed::MacUnit::new(Default::default());
            for &i in adj {
                mac.accumulate(params[0][o * 24 + i], input.at(i));
            }
            assert_eq!(dense.at(o), mac.result(), "neuron {o}");
        }
    }

    #[test]
    fn irregular_fc_has_requested_density() {
        let (_, params, adjacency) = irregular_fc(50, 20, 0.2, 4);
        let edges: usize = adjacency.iter().map(Vec::len).sum();
        let nonzero = params[0].iter().filter(|w| !w.is_zero()).count();
        assert!(nonzero <= edges, "every nonzero weight is an edge");
        let density = edges as f64 / 1000.0;
        assert!((0.1..0.35).contains(&density), "density {density}");
    }

    #[test]
    fn cellular_unrolls_conv_stages() {
        let net = cellular(16, 16, 3).unwrap();
        assert_eq!(net.depth(), 3);
        assert_eq!(net.output_shape(), Shape::new(1, 10, 10));
        assert!(cellular(4, 4, 3).is_err());
    }
}
