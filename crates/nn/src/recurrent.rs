//! Recurrent networks by unfolding — the paper's §VI extension claim:
//! *"RNN is equivalent to a deep MLP after unfolding in time"*, so the
//! Neurocube runs one without architectural changes.
//!
//! An Elman-style recurrence
//!
//! ```text
//! h_t = act(W_h · h_{t-1} + W_x · x_t),   y = out_act(W_o · h_T)
//! ```
//!
//! unfolds into a chain of fully connected layers. Because a feedforward
//! layer only sees its predecessor's output, the not-yet-consumed inputs
//! `x_{t+1} .. x_T` are *carried through* each unfolded layer by an
//! identity block in its weight matrix. Multiplying by `1.0` is exact in
//! `Q1.7.8` — but the carried values still pass through the layer's
//! activation, so the equivalence is **exact only for activations that fix
//! the carried values**: `Identity`, or `ReLU` with non-negative input
//! sequences. That is a real (and rarely stated) caveat to the paper's
//! "RNN = deep MLP" claim; within it, the unfolded MLP reproduces the
//! direct recurrence **bit-for-bit** (verified in tests and on the
//! cycle-level simulator).

use crate::layer::{LayerSpec, Shape};
use crate::network::{NetworkError, NetworkSpec};
use crate::tensor::Tensor;
use neurocube_fixed::{AccumulatorWidth, Activation, ActivationLut, MacUnit, Q88};

/// An Elman recurrent network description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecurrentSpec {
    /// Input features per timestep.
    pub inputs: usize,
    /// Hidden-state width.
    pub hidden: usize,
    /// Output classes (read from the final hidden state).
    pub outputs: usize,
    /// Hidden-state activation.
    pub activation: Activation,
    /// Output-layer activation.
    pub output_activation: Activation,
    /// Timesteps to unfold.
    pub steps: usize,
}

impl RecurrentSpec {
    /// Validates the description.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::Empty`] if any dimension or the step count
    /// is zero, or if the hidden activation cannot carry inputs through the
    /// unfolded layers exactly (only [`Activation::Identity`] and
    /// [`Activation::ReLU`] — the latter assuming non-negative input
    /// sequences, checked by [`pack_input`](Self::pack_input)).
    pub fn validate(&self) -> Result<(), NetworkError> {
        if self.inputs == 0 || self.hidden == 0 || self.outputs == 0 || self.steps == 0 {
            return Err(NetworkError::Empty);
        }
        if !matches!(self.activation, Activation::Identity | Activation::ReLU) {
            return Err(NetworkError::Empty);
        }
        Ok(())
    }

    /// Number of weights in each of the shared matrices
    /// `(W_x, W_h, W_o)`.
    pub fn weight_counts(&self) -> (usize, usize, usize) {
        (
            self.hidden * self.inputs,
            self.hidden * self.hidden,
            self.outputs * self.hidden,
        )
    }

    /// The unfolded feedforward network: `steps` fully connected layers of
    /// shrinking width (each consumes one timestep's input and carries the
    /// rest through), then the output layer.
    ///
    /// Layer `t` (0-based) maps
    /// `[h_t ; x_{t+1} .. x_T] → [h_{t+1} ; x_{t+2} .. x_T]`.
    /// The network input is `[h_0 ; x_1 .. x_T]` (initial hidden state
    /// followed by the whole input sequence).
    ///
    /// # Errors
    ///
    /// Returns an error if the description is invalid.
    pub fn unfold(&self) -> Result<NetworkSpec, NetworkError> {
        self.validate()?;
        let mut layers = Vec::with_capacity(self.steps + 1);
        for t in 0..self.steps {
            let remaining = (self.steps - 1 - t) * self.inputs;
            layers.push(LayerSpec::fc(self.hidden + remaining, self.activation));
        }
        layers.push(LayerSpec::fc(self.outputs, self.output_activation));
        NetworkSpec::new(Shape::flat(self.hidden + self.steps * self.inputs), layers)
    }

    /// Materializes the unfolded network's per-layer weights from the three
    /// shared matrices (row-major: `w_x[h][i]`, `w_h[h][h']`, `w_o[o][h]`).
    ///
    /// Each unfolded layer's matrix is
    ///
    /// ```text
    /// [ W_h  W_x  0 ]     (hidden rows)
    /// [  0    0   I ]     (carry rows for x_{t+2..})
    /// ```
    ///
    /// The identity carry is exact in fixed point.
    ///
    /// # Panics
    ///
    /// Panics if the matrices do not match [`weight_counts`](Self::weight_counts).
    pub fn unfolded_params(&self, w_x: &[Q88], w_h: &[Q88], w_o: &[Q88]) -> Vec<Vec<Q88>> {
        let (nx, nh, no) = self.weight_counts();
        assert_eq!(w_x.len(), nx, "W_x size");
        assert_eq!(w_h.len(), nh, "W_h size");
        assert_eq!(w_o.len(), no, "W_o size");
        let mut params = Vec::with_capacity(self.steps + 1);
        for t in 0..self.steps {
            let carry = (self.steps - 1 - t) * self.inputs;
            let n_in = self.hidden + (self.steps - t) * self.inputs;
            let n_out = self.hidden + carry;
            let mut w = vec![Q88::ZERO; n_out * n_in];
            // Hidden rows: W_h over h, then W_x over x_{t+1}.
            for h in 0..self.hidden {
                for j in 0..self.hidden {
                    w[h * n_in + j] = w_h[h * self.hidden + j];
                }
                for i in 0..self.inputs {
                    w[h * n_in + self.hidden + i] = w_x[h * self.inputs + i];
                }
            }
            // Carry rows: identity over x_{t+2..}.
            for c in 0..carry {
                let row = self.hidden + c;
                let col = self.hidden + self.inputs + c;
                w[row * n_in + col] = Q88::ONE;
            }
            params.push(w);
        }
        params.push(w_o.to_vec());
        params
    }

    /// Packs an input sequence (plus the zero initial hidden state) into
    /// the unfolded network's input tensor.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is not `steps` vectors of `inputs` values, or if the
    /// hidden activation is `ReLU` and any input is negative (ReLU would
    /// not carry it exactly; see the module docs).
    pub fn pack_input(&self, xs: &[Vec<Q88>]) -> Tensor {
        assert_eq!(xs.len(), self.steps, "one vector per timestep");
        let mut v = vec![Q88::ZERO; self.hidden];
        for x in xs {
            assert_eq!(x.len(), self.inputs, "timestep width");
            if self.activation == Activation::ReLU {
                assert!(
                    x.iter().all(|&q| q >= Q88::ZERO),
                    "ReLU unfolding requires non-negative inputs"
                );
            }
            v.extend_from_slice(x);
        }
        Tensor::from_flat(v)
    }

    /// The direct (non-unfolded) recurrence, with exactly the unfolded
    /// network's MAC semantics and connection order, as the equivalence
    /// reference. Returns the output vector.
    ///
    /// # Panics
    ///
    /// Panics on mismatched weight or input sizes.
    pub fn run_direct(
        &self,
        w_x: &[Q88],
        w_h: &[Q88],
        w_o: &[Q88],
        xs: &[Vec<Q88>],
        width: AccumulatorWidth,
    ) -> Vec<Q88> {
        let (nx, nh, no) = self.weight_counts();
        assert_eq!(w_x.len(), nx);
        assert_eq!(w_h.len(), nh);
        assert_eq!(w_o.len(), no);
        assert_eq!(xs.len(), self.steps);
        let lut = ActivationLut::new(self.activation);
        let out_lut = ActivationLut::new(self.output_activation);
        let mut h = vec![Q88::ZERO; self.hidden];
        for x in xs {
            let mut next = vec![Q88::ZERO; self.hidden];
            for (j, slot) in next.iter_mut().enumerate() {
                // Connection order matches the unfolded FC layer: hidden
                // inputs first, then the timestep's inputs.
                let mut mac = MacUnit::new(width);
                for (k, &hv) in h.iter().enumerate() {
                    mac.accumulate(w_h[j * self.hidden + k], hv);
                }
                for (k, &xv) in x.iter().enumerate() {
                    mac.accumulate(w_x[j * self.inputs + k], xv);
                }
                *slot = lut.apply(mac.result());
            }
            h = next;
        }
        (0..self.outputs)
            .map(|o| {
                let mut mac = MacUnit::new(width);
                for (k, &hv) in h.iter().enumerate() {
                    mac.accumulate(w_o[o * self.hidden + k], hv);
                }
                out_lut.apply(mac.result())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn spec() -> RecurrentSpec {
        RecurrentSpec {
            inputs: 3,
            hidden: 5,
            outputs: 2,
            activation: Activation::ReLU,
            output_activation: Activation::Sigmoid,
            steps: 4,
        }
    }

    fn random_q(rng: &mut SmallRng, n: usize, scale: f64) -> Vec<Q88> {
        (0..n)
            .map(|_| Q88::from_f64(rng.random_range(-scale..scale)))
            .collect()
    }

    #[test]
    fn unfolded_shapes_shrink_correctly() {
        let net = spec().unfold().unwrap();
        // Input: 5 + 4*3 = 17; layers: 14, 11, 8, 5, then 2.
        assert_eq!(net.input_shape().len(), 17);
        let widths: Vec<usize> = net.shapes()[1..].iter().map(|s| s.len()).collect();
        assert_eq!(widths, vec![14, 11, 8, 5, 2]);
    }

    #[test]
    fn unfolded_mlp_matches_direct_recurrence_bit_exactly() {
        let r = spec();
        let mut rng = SmallRng::seed_from_u64(5);
        let (nx, nh, no) = r.weight_counts();
        let w_x = random_q(&mut rng, nx, 0.4);
        let w_h = random_q(&mut rng, nh, 0.4);
        let w_o = random_q(&mut rng, no, 0.4);
        // Non-negative inputs so the ReLU carry is exact.
        let xs: Vec<Vec<Q88>> = (0..r.steps)
            .map(|_| {
                random_q(&mut rng, r.inputs, 1.0)
                    .into_iter()
                    .map(Q88::saturating_abs)
                    .collect()
            })
            .collect();

        let direct = r.run_direct(&w_x, &w_h, &w_o, &xs, AccumulatorWidth::Wide32);
        let net = r.unfold().unwrap();
        let exec = Executor::new(net, r.unfolded_params(&w_x, &w_h, &w_o));
        let unfolded = exec.predict(&r.pack_input(&xs));
        assert_eq!(unfolded.as_slice(), direct.as_slice());
    }

    #[test]
    fn carry_is_exact() {
        // With zero recurrence weights, layer t's carried inputs must be
        // the raw x values (identity multiplication is exact).
        let r = RecurrentSpec {
            inputs: 2,
            hidden: 1,
            outputs: 1,
            activation: Activation::Identity,
            output_activation: Activation::Identity,
            steps: 3,
        };
        let (nx, nh, no) = r.weight_counts();
        let net = r.unfold().unwrap();
        let params = r.unfolded_params(
            &vec![Q88::ZERO; nx],
            &vec![Q88::ZERO; nh],
            &vec![Q88::ZERO; no],
        );
        let exec = Executor::new(net, params);
        let xs = vec![
            vec![Q88::from_f64(0.125), Q88::from_f64(-3.5)],
            vec![Q88::from_f64(1.75), Q88::from_f64(0.0625)],
            vec![Q88::from_f64(-0.25), Q88::from_f64(7.0)],
        ]; // negatives are fine with Identity activation
        let outs = exec.forward(&r.pack_input(&xs));
        // After layer 0: [h1(=0), x2, x3]; the carried x3 is exact.
        assert_eq!(outs[0].at(1), xs[1][0]);
        assert_eq!(outs[0].at(3), xs[2][0]);
        assert_eq!(outs[0].at(4), xs[2][1]);
        // After layer 1: [h2(=0), x3].
        assert_eq!(outs[1].at(2), xs[2][1]);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut r = spec();
        r.steps = 0;
        assert!(r.unfold().is_err());
        r = spec();
        r.hidden = 0;
        assert!(r.validate().is_err());
        // Activations that distort the carried inputs are rejected.
        r = spec();
        r.activation = Activation::Tanh;
        assert!(r.unfold().is_err());
    }

    #[test]
    #[should_panic(expected = "W_x size")]
    fn param_sizes_checked() {
        let r = spec();
        let _ = r.unfolded_params(&[], &[], &[]);
    }
}
