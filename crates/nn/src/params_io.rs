//! Binary serialization of trained parameters.
//!
//! A minimal, dependency-free format so trained networks can be stored and
//! shipped to a Neurocube deployment: magic + version, layer count, then
//! each layer's weights as little-endian `Q1.7.8` bit patterns — the exact
//! DRAM byte layout the host loads into the cube.
//!
//! Loading is hardened against corrupt input: every failure mode is a typed
//! [`ParamsError`], never a panic, and declared lengths are only trusted in
//! bounded chunks (a corrupted 8-byte length field cannot trigger a huge
//! up-front allocation).

use neurocube_fixed::Q88;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"NCUBEW1\n";

/// Bytes read (and therefore allocated) at a time while streaming a layer's
/// weight payload; declared lengths beyond this are verified incrementally.
const CHUNK_BYTES: usize = 64 * 1024;

/// Errors produced while loading a parameter file.
#[derive(Debug)]
pub enum ParamsError {
    /// The stream does not start with the Neurocube weight magic/version.
    BadMagic,
    /// The stream ended before the declared layer payloads.
    Truncated,
    /// An underlying reader error.
    Io(io::Error),
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::BadMagic => f.write_str("not a Neurocube weight file (bad magic)"),
            ParamsError::Truncated => f.write_str("truncated Neurocube weight file"),
            ParamsError::Io(e) => write!(f, "weight file read error: {e}"),
        }
    }
}

impl std::error::Error for ParamsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParamsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParamsError {
    fn from(e: io::Error) -> ParamsError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ParamsError::Truncated
        } else {
            ParamsError::Io(e)
        }
    }
}

/// Writes per-layer parameters to `w`.
///
/// Generic writers can be passed by `&mut` reference.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_params<W: Write>(params: &[Vec<Q88>], mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for layer in params {
        w.write_all(&(layer.len() as u64).to_le_bytes())?;
        for q in layer {
            w.write_all(&q.to_bits().to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads parameters previously written by [`save_params`].
///
/// Generic readers can be passed by `&mut` reference.
///
/// # Errors
///
/// Returns [`ParamsError::BadMagic`] on a bad magic/version header,
/// [`ParamsError::Truncated`] when the stream ends early, and
/// [`ParamsError::Io`] for other reader errors. Never panics on corrupt
/// input.
pub fn load_params<R: Read>(mut r: R) -> Result<Vec<Vec<Q88>>, ParamsError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ParamsError::BadMagic);
    }
    let mut n = [0u8; 4];
    r.read_exact(&mut n)?;
    let layers = u32::from_le_bytes(n) as usize;
    let mut params = Vec::new();
    for _ in 0..layers {
        let mut len = [0u8; 8];
        r.read_exact(&mut len)?;
        let len = usize::try_from(u64::from_le_bytes(len)).map_err(|_| ParamsError::Truncated)?;
        let mut remaining = len.checked_mul(2).ok_or(ParamsError::Truncated)?;
        let mut layer = Vec::new();
        let mut chunk = vec![0u8; CHUNK_BYTES.min(remaining)];
        while remaining > 0 {
            let take = CHUNK_BYTES.min(remaining);
            r.read_exact(&mut chunk[..take])?;
            layer.extend(
                chunk[..take]
                    .chunks_exact(2)
                    .map(|c| Q88::from_bits(i16::from_le_bytes([c[0], c[1]]))),
            );
            remaining -= take;
        }
        params.push(layer);
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_preserves_every_bit() {
        let spec = workloads::tiny_convnet();
        let params = spec.init_params(9, 0.4);
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();
        let back = load_params(buf.as_slice()).unwrap();
        assert_eq!(back, params);
    }

    #[test]
    fn empty_layers_roundtrip() {
        let params = vec![vec![], vec![Q88::ONE], vec![]];
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();
        assert_eq!(load_params(buf.as_slice()).unwrap(), params);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_params(&b"NOTAFILE12345678"[..]).unwrap_err();
        assert!(matches!(err, ParamsError::BadMagic), "{err}");
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let spec = workloads::tiny_convnet();
        let params = spec.init_params(9, 0.4);
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = load_params(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ParamsError::Truncated), "{err}");
    }

    #[test]
    fn huge_declared_length_does_not_allocate() {
        // Header declaring one layer of u64::MAX weights, no payload:
        // must fail with a typed error, not abort on allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = load_params(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ParamsError::Truncated), "{err}");
    }

    #[test]
    fn errors_display_and_chain() {
        use std::error::Error;
        assert!(!ParamsError::BadMagic.to_string().is_empty());
        let io_err = ParamsError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(io_err.source().is_some());
    }

    fn arb_params() -> impl Strategy<Value = Vec<Vec<Q88>>> {
        proptest::collection::vec(
            proptest::collection::vec(any::<i16>().prop_map(Q88::from_bits), 0..48),
            0..5,
        )
    }

    proptest! {
        /// Satellite property: save → load is bitwise-identical for
        /// arbitrary parameter sets.
        #[test]
        fn roundtrip_is_bitwise_identical(params in arb_params()) {
            let mut buf = Vec::new();
            save_params(&params, &mut buf).unwrap();
            prop_assert_eq!(load_params(buf.as_slice()).unwrap(), params);
        }

        /// Satellite property: corrupting any single header/payload byte
        /// (or truncating anywhere) yields a typed error or a decodable
        /// file — never a panic.
        #[test]
        fn corruption_never_panics(
            params in arb_params(),
            pos in any::<usize>(),
            flip in 1u8..=255,
            cut in any::<usize>(),
        ) {
            let mut buf = Vec::new();
            save_params(&params, &mut buf).unwrap();
            let mut corrupt = buf.clone();
            let i = pos % corrupt.len(); // buf always holds the 12-byte header
            corrupt[i] ^= flip;
            let _ = load_params(corrupt.as_slice());
            let mut short = buf;
            short.truncate(cut % short.len());
            let _ = load_params(short.as_slice());
        }
    }
}
