//! Binary serialization of trained parameters.
//!
//! A minimal, dependency-free format so trained networks can be stored and
//! shipped to a Neurocube deployment: magic + version, layer count, then
//! each layer's weights as little-endian `Q1.7.8` bit patterns — the exact
//! DRAM byte layout the host loads into the cube.

use neurocube_fixed::Q88;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"NCUBEW1\n";

/// Writes per-layer parameters to `w`.
///
/// Generic writers can be passed by `&mut` reference.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_params<W: Write>(params: &[Vec<Q88>], mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for layer in params {
        w.write_all(&(layer.len() as u64).to_le_bytes())?;
        for q in layer {
            w.write_all(&q.to_bits().to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads parameters previously written by [`save_params`].
///
/// Generic readers can be passed by `&mut` reference.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic/version header or
/// a truncated stream, and propagates reader errors.
pub fn load_params<R: Read>(mut r: R) -> io::Result<Vec<Vec<Q88>>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a Neurocube weight file (bad magic)",
        ));
    }
    let mut n = [0u8; 4];
    r.read_exact(&mut n)?;
    let layers = u32::from_le_bytes(n) as usize;
    let mut params = Vec::with_capacity(layers);
    for _ in 0..layers {
        let mut len = [0u8; 8];
        r.read_exact(&mut len)?;
        let len = u64::from_le_bytes(len) as usize;
        let mut bytes = vec![0u8; len * 2];
        r.read_exact(&mut bytes)?;
        params.push(
            bytes
                .chunks_exact(2)
                .map(|c| Q88::from_bits(i16::from_le_bytes([c[0], c[1]])))
                .collect(),
        );
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn roundtrip_preserves_every_bit() {
        let spec = workloads::tiny_convnet();
        let params = spec.init_params(9, 0.4);
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();
        let back = load_params(buf.as_slice()).unwrap();
        assert_eq!(back, params);
    }

    #[test]
    fn empty_layers_roundtrip() {
        let params = vec![vec![], vec![Q88::ONE], vec![]];
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();
        assert_eq!(load_params(buf.as_slice()).unwrap(), params);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_params(&b"NOTAFILE12345678"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let spec = workloads::tiny_convnet();
        let params = spec.init_params(9, 0.4);
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(load_params(buf.as_slice()).is_err());
    }
}
