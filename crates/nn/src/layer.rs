//! Layer descriptions and shape arithmetic.

use neurocube_fixed::Activation;
use std::fmt;

/// The shape of one layer's neuron volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Feature maps.
    pub channels: usize,
    /// Rows.
    pub height: usize,
    /// Columns.
    pub width: usize,
}

impl Shape {
    /// A `(c, h, w)` shape.
    pub const fn new(channels: usize, height: usize, width: usize) -> Shape {
        Shape {
            channels,
            height,
            width,
        }
    }

    /// The shape of a flat vector of `n` neurons (an MLP layer).
    pub const fn flat(n: usize) -> Shape {
        Shape {
            channels: n,
            height: 1,
            width: 1,
        }
    }

    /// Total neuron count.
    pub const fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// `true` iff the shape has zero neurons.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes needed to store one `Q1.7.8` state per neuron.
    pub const fn state_bytes(&self) -> usize {
        self.len() * 2
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

/// How a convolutional layer's output maps connect to input maps.
///
/// The paper programs its first conv layer with **49** connections per
/// neuron (7×7, §IV-C) — i.e. each output map reads a *single* input map —
/// rather than the `49 × in_channels` of a standard ConvNN. Both variants
/// are supported; the paper-reproduction benchmarks use
/// [`SingleMap`](ConvConnectivity::SingleMap) so operation counts line up
/// with the published figures, while functional examples may use
/// [`AllMaps`](ConvConnectivity::AllMaps). See `DESIGN.md`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ConvConnectivity {
    /// Output map `oc` convolves input map `oc % in_channels` only
    /// (connections per neuron = `kernel²`).
    #[default]
    SingleMap,
    /// Every output map convolves all input maps (connections per neuron =
    /// `kernel² × in_channels`).
    AllMaps,
}

/// One layer of a network, as the host would describe it to the Neurocube.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerSpec {
    /// 2D valid convolution (no padding; output shrinks by `kernel − 1`).
    Conv2d {
        /// Output feature maps.
        out_channels: usize,
        /// Square kernel side.
        kernel: usize,
        /// Stride in both dimensions.
        stride: usize,
        /// Map-to-map connectivity.
        connectivity: ConvConnectivity,
        /// Non-linearity applied by the PNG's LUT on write-back.
        activation: Activation,
    },
    /// Non-overlapping average pooling (a MAC-expressible stand-in for the
    /// reference network's pooling stage; see `DESIGN.md`).
    AvgPool {
        /// Pooling window side (= stride).
        size: usize,
    },
    /// Fully connected layer over the flattened input volume.
    FullyConnected {
        /// Output neurons.
        outputs: usize,
        /// Non-linearity applied on write-back.
        activation: Activation,
    },
    /// Element-wise sum of `terms` channel-stacked operands: input channel
    /// group `k` (channels `[k·C, (k+1)·C)`) is added into output channel
    /// `c ∈ [0, C)` at the same spatial position. The graph compiler lowers
    /// residual `Add` nodes to this layer over the concatenation of the
    /// summands; the MAC dataflow is a degenerate 1×1 "convolution" with
    /// implicit unit weights.
    Eltwise {
        /// Operands summed per output neuron.
        terms: usize,
        /// Non-linearity applied on write-back.
        activation: Activation,
    },
}

impl LayerSpec {
    /// Convenience constructor for the common single-map conv layer.
    pub const fn conv(out_channels: usize, kernel: usize, activation: Activation) -> LayerSpec {
        LayerSpec::Conv2d {
            out_channels,
            kernel,
            stride: 1,
            connectivity: ConvConnectivity::SingleMap,
            activation,
        }
    }

    /// Convenience constructor for a fully connected layer.
    pub const fn fc(outputs: usize, activation: Activation) -> LayerSpec {
        LayerSpec::FullyConnected {
            outputs,
            activation,
        }
    }

    /// Convenience constructor for an element-wise sum of `terms` operands.
    pub const fn add(terms: usize, activation: Activation) -> LayerSpec {
        LayerSpec::Eltwise { terms, activation }
    }

    /// The output volume for a given input volume, or `None` if the layer
    /// cannot be applied (kernel larger than input, zero output, ...).
    pub fn output_shape(&self, input: Shape) -> Option<Shape> {
        match *self {
            LayerSpec::Conv2d {
                out_channels,
                kernel,
                stride,
                ..
            } => {
                if kernel == 0 || stride == 0 || out_channels == 0 {
                    return None;
                }
                if input.height < kernel || input.width < kernel {
                    return None;
                }
                Some(Shape {
                    channels: out_channels,
                    height: (input.height - kernel) / stride + 1,
                    width: (input.width - kernel) / stride + 1,
                })
            }
            LayerSpec::AvgPool { size } => {
                if size == 0 || input.height < size || input.width < size {
                    return None;
                }
                Some(Shape {
                    channels: input.channels,
                    height: input.height / size,
                    width: input.width / size,
                })
            }
            LayerSpec::FullyConnected { outputs, .. } => {
                (outputs > 0).then_some(Shape::flat(outputs))
            }
            LayerSpec::Eltwise { terms, .. } => {
                if terms == 0 || !input.channels.is_multiple_of(terms) || input.channels == 0 {
                    return None;
                }
                Some(Shape {
                    channels: input.channels / terms,
                    height: input.height,
                    width: input.width,
                })
            }
        }
    }

    /// Connections per output neuron — the PNG's `n_connections`
    /// configuration register value.
    pub fn connections_per_neuron(&self, input: Shape) -> usize {
        match *self {
            LayerSpec::Conv2d {
                kernel,
                connectivity,
                ..
            } => match connectivity {
                ConvConnectivity::SingleMap => kernel * kernel,
                ConvConnectivity::AllMaps => kernel * kernel * input.channels,
            },
            LayerSpec::AvgPool { size } => size * size,
            LayerSpec::FullyConnected { .. } => input.len(),
            LayerSpec::Eltwise { terms, .. } => terms,
        }
    }

    /// Stored synaptic weights (average pooling uses an implicit constant
    /// weight and stores none).
    pub fn weight_count(&self, input: Shape) -> usize {
        match *self {
            LayerSpec::Conv2d {
                out_channels,
                kernel,
                connectivity,
                ..
            } => {
                let per_map = match connectivity {
                    ConvConnectivity::SingleMap => kernel * kernel,
                    ConvConnectivity::AllMaps => kernel * kernel * input.channels,
                };
                out_channels * per_map
            }
            LayerSpec::AvgPool { .. } => 0,
            LayerSpec::FullyConnected { outputs, .. } => outputs * input.len(),
            LayerSpec::Eltwise { .. } => 0,
        }
    }

    /// Multiply-accumulate operations to evaluate the layer once.
    pub fn macs(&self, input: Shape) -> Option<u64> {
        let out = self.output_shape(input)?;
        Some(out.len() as u64 * self.connections_per_neuron(input) as u64)
    }

    /// Arithmetic operations (2 per MAC: multiply + add), the unit of the
    /// paper's GOPs/s throughput numbers.
    pub fn ops(&self, input: Shape) -> Option<u64> {
        Some(self.macs(input)? * 2)
    }

    /// The activation function written back through the PNG's LUT.
    pub fn activation(&self) -> Activation {
        match *self {
            LayerSpec::Conv2d { activation, .. } => activation,
            LayerSpec::AvgPool { .. } => Activation::Identity,
            LayerSpec::FullyConnected { activation, .. } => activation,
            LayerSpec::Eltwise { activation, .. } => activation,
        }
    }

    /// Short kind name for reports ("conv", "pool", "fc", "add").
    pub fn kind_name(&self) -> &'static str {
        match self {
            LayerSpec::Conv2d { .. } => "conv",
            LayerSpec::AvgPool { .. } => "pool",
            LayerSpec::FullyConnected { .. } => "fc",
            LayerSpec::Eltwise { .. } => "add",
        }
    }

    /// `true` for layers whose weights stream from DRAM rather than living
    /// in PE weight memory. Conv kernels and the pooling constant are small
    /// and duplicated into each PE's 3,600-bit weight register file
    /// (§III-B-2, Table II); fully connected weight matrices are far too
    /// large and stream from their vault (Fig. 10(d)).
    pub fn weights_stream(&self) -> bool {
        matches!(self, LayerSpec::FullyConnected { .. })
    }
}

impl fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LayerSpec::Conv2d {
                out_channels,
                kernel,
                stride,
                connectivity,
                activation,
            } => write!(
                f,
                "conv {kernel}x{kernel}/{stride} -> {out_channels} maps ({connectivity:?}, {activation})"
            ),
            LayerSpec::AvgPool { size } => write!(f, "avgpool {size}x{size}"),
            LayerSpec::FullyConnected {
                outputs,
                activation,
            } => write!(f, "fc -> {outputs} ({activation})"),
            LayerSpec::Eltwise { terms, activation } => {
                write!(f, "add x{terms} ({activation})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_matches_paper_layer1() {
        // 320x240 RGB input, 7x7 kernel, 16 maps -> 314x234 (the paper's
        // 73,476 = 314 x 234 neurons per map).
        let input = Shape::new(3, 240, 320);
        let l = LayerSpec::conv(16, 7, Activation::Tanh);
        let out = l.output_shape(input).unwrap();
        assert_eq!(out, Shape::new(16, 234, 314));
        assert_eq!(out.height * out.width, 73_476);
        assert_eq!(l.connections_per_neuron(input), 49);
    }

    #[test]
    fn conv_all_maps_connectivity() {
        let input = Shape::new(3, 240, 320);
        let l = LayerSpec::Conv2d {
            out_channels: 16,
            kernel: 7,
            stride: 1,
            connectivity: ConvConnectivity::AllMaps,
            activation: Activation::Tanh,
        };
        assert_eq!(l.connections_per_neuron(input), 147);
        assert_eq!(l.weight_count(input), 16 * 147);
    }

    #[test]
    fn pool_shape_floors() {
        let l = LayerSpec::AvgPool { size: 2 };
        let out = l.output_shape(Shape::new(16, 111, 151)).unwrap();
        assert_eq!(out, Shape::new(16, 55, 75));
        assert_eq!(l.connections_per_neuron(Shape::new(16, 4, 4)), 4);
        assert_eq!(l.weight_count(Shape::new(16, 4, 4)), 0);
    }

    #[test]
    fn fc_shape_and_weights() {
        let input = Shape::new(4, 3, 3);
        let l = LayerSpec::fc(10, Activation::Sigmoid);
        assert_eq!(l.output_shape(input).unwrap(), Shape::flat(10));
        assert_eq!(l.connections_per_neuron(input), 36);
        assert_eq!(l.weight_count(input), 360);
        assert!(l.weights_stream());
        assert!(!LayerSpec::conv(4, 3, Activation::ReLU).weights_stream());
    }

    #[test]
    fn ops_are_two_per_mac() {
        let input = Shape::new(1, 10, 10);
        let l = LayerSpec::conv(2, 3, Activation::ReLU);
        let out = l.output_shape(input).unwrap();
        assert_eq!(out, Shape::new(2, 8, 8));
        assert_eq!(l.macs(input).unwrap(), 2 * 64 * 9);
        assert_eq!(l.ops(input).unwrap(), 2 * 2 * 64 * 9);
    }

    #[test]
    fn invalid_geometry_yields_none() {
        let tiny = Shape::new(1, 3, 3);
        assert!(LayerSpec::conv(1, 7, Activation::ReLU)
            .output_shape(tiny)
            .is_none());
        assert!(LayerSpec::AvgPool { size: 4 }.output_shape(tiny).is_none());
        assert!(LayerSpec::fc(0, Activation::ReLU)
            .output_shape(tiny)
            .is_none());
    }

    #[test]
    fn strided_conv() {
        let l = LayerSpec::Conv2d {
            out_channels: 1,
            kernel: 3,
            stride: 2,
            connectivity: ConvConnectivity::SingleMap,
            activation: Activation::Identity,
        };
        assert_eq!(
            l.output_shape(Shape::new(1, 9, 9)).unwrap(),
            Shape::new(1, 4, 4)
        );
    }

    #[test]
    fn eltwise_shape_and_counts() {
        let l = LayerSpec::add(2, Activation::ReLU);
        let input = Shape::new(6, 5, 4);
        assert_eq!(l.output_shape(input).unwrap(), Shape::new(3, 5, 4));
        assert_eq!(l.connections_per_neuron(input), 2);
        assert_eq!(l.weight_count(input), 0);
        assert_eq!(l.macs(input).unwrap(), 3 * 5 * 4 * 2);
        assert_eq!(l.kind_name(), "add");
        assert!(!l.weights_stream());
        // Channel count must divide evenly.
        assert!(l.output_shape(Shape::new(5, 4, 4)).is_none());
        assert!(LayerSpec::add(0, Activation::ReLU)
            .output_shape(input)
            .is_none());
        assert_eq!(l.to_string(), "add x2 (relu)");
    }

    #[test]
    fn shape_helpers() {
        let s = Shape::new(2, 3, 4);
        assert_eq!(s.len(), 24);
        assert_eq!(s.state_bytes(), 48);
        assert!(!s.is_empty());
        assert_eq!(s.to_string(), "2x3x4");
        assert_eq!(Shape::flat(7).len(), 7);
    }
}
