//! Whole-network description and parameter storage.

use crate::layer::{LayerSpec, Shape};
use neurocube_fixed::Q88;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// Errors produced when validating a [`NetworkSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// The network has no layers.
    Empty,
    /// A layer cannot be applied to its input volume.
    BadGeometry {
        /// Index of the offending layer.
        layer: usize,
        /// The input volume it was offered.
        input: Shape,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Empty => f.write_str("network has no layers"),
            NetworkError::BadGeometry { layer, input } => {
                write!(f, "layer {layer} does not fit its input volume {input}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A full network: input volume plus an ordered list of layers.
///
/// # Examples
///
/// ```
/// use neurocube_nn::{NetworkSpec, LayerSpec, Shape};
/// use neurocube_fixed::Activation;
///
/// let net = NetworkSpec::new(
///     Shape::new(1, 8, 8),
///     vec![
///         LayerSpec::conv(4, 3, Activation::ReLU),
///         LayerSpec::AvgPool { size: 2 },
///         LayerSpec::fc(10, Activation::Sigmoid),
///     ],
/// )?;
/// assert_eq!(net.output_shape(), Shape::flat(10));
/// # Ok::<(), neurocube_nn::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkSpec {
    input: Shape,
    layers: Vec<LayerSpec>,
    /// Shapes of every volume: `shapes[0]` = input, `shapes[i+1]` = output
    /// of layer `i`.
    shapes: Vec<Shape>,
}

impl NetworkSpec {
    /// Validates layer geometry and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the layer list is empty or any layer does
    /// not fit the volume produced by its predecessor.
    pub fn new(input: Shape, layers: Vec<LayerSpec>) -> Result<NetworkSpec, NetworkError> {
        if layers.is_empty() {
            return Err(NetworkError::Empty);
        }
        let mut shapes = Vec::with_capacity(layers.len() + 1);
        shapes.push(input);
        for (i, layer) in layers.iter().enumerate() {
            let cur = *shapes.last().expect("shapes is non-empty");
            let out = layer.output_shape(cur).ok_or(NetworkError::BadGeometry {
                layer: i,
                input: cur,
            })?;
            shapes.push(out);
        }
        Ok(NetworkSpec {
            input,
            layers,
            shapes,
        })
    }

    /// The input volume.
    pub fn input_shape(&self) -> Shape {
        self.input
    }

    /// The final output volume.
    pub fn output_shape(&self) -> Shape {
        *self.shapes.last().expect("validated non-empty")
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The trivial graph embedding of this linear chain (see
    /// [`GraphSpec::linear`](crate::GraphSpec::linear)): weight order is
    /// preserved, so `init_params` of the spec and of the graph are
    /// interchangeable, and the graph compiler is a strict generalization
    /// of the linear one.
    pub fn to_graph(&self) -> crate::GraphSpec {
        crate::GraphSpec::linear(self)
    }

    /// The input volume of layer `i`.
    pub fn layer_input(&self, i: usize) -> Shape {
        self.shapes[i]
    }

    /// The output volume of layer `i`.
    pub fn layer_output(&self, i: usize) -> Shape {
        self.shapes[i + 1]
    }

    /// All volumes: index 0 is the network input, index `i + 1` the output
    /// of layer `i`.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// MAC count per layer for one inference.
    pub fn macs_per_layer(&self) -> Vec<u64> {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| l.macs(self.shapes[i]).expect("validated"))
            .collect()
    }

    /// Total arithmetic operations (2 per MAC) for one inference.
    pub fn total_ops(&self) -> u64 {
        self.macs_per_layer().iter().sum::<u64>() * 2
    }

    /// Stored weights per layer.
    pub fn weights_per_layer(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| l.weight_count(self.shapes[i]))
            .collect()
    }

    /// Random parameter initialization: uniform weights in `[-scale, scale]`
    /// quantized to `Q1.7.8`, deterministic in `seed`.
    pub fn init_params(&self, seed: u64, scale: f64) -> Vec<Vec<Q88>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        self.weights_per_layer()
            .iter()
            .map(|&n| {
                (0..n)
                    .map(|_| Q88::from_f64(rng.random_range(-scale..=scale)))
                    .collect()
            })
            .collect()
    }
}

impl fmt::Display for NetworkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "input {}", self.input)?;
        for (i, layer) in self.layers.iter().enumerate() {
            writeln!(f, "L{}: {layer} -> {}", i + 1, self.shapes[i + 1])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube_fixed::Activation;

    fn small_net() -> NetworkSpec {
        NetworkSpec::new(
            Shape::new(1, 8, 8),
            vec![
                LayerSpec::conv(4, 3, Activation::ReLU),
                LayerSpec::AvgPool { size: 2 },
                LayerSpec::fc(10, Activation::Sigmoid),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shapes_chain() {
        let net = small_net();
        assert_eq!(net.shapes().len(), 4);
        assert_eq!(net.layer_input(0), Shape::new(1, 8, 8));
        assert_eq!(net.layer_output(0), Shape::new(4, 6, 6));
        assert_eq!(net.layer_output(1), Shape::new(4, 3, 3));
        assert_eq!(net.output_shape(), Shape::flat(10));
    }

    #[test]
    fn op_accounting() {
        let net = small_net();
        let macs = net.macs_per_layer();
        assert_eq!(macs[0], 4 * 36 * 9);
        assert_eq!(macs[1], 4 * 9 * 4);
        assert_eq!(macs[2], 10 * 36);
        assert_eq!(net.total_ops(), 2 * macs.iter().sum::<u64>());
    }

    #[test]
    fn weights_per_layer_counts() {
        let net = small_net();
        assert_eq!(net.weights_per_layer(), vec![4 * 9, 0, 360]);
    }

    #[test]
    fn init_is_deterministic_and_bounded() {
        let net = small_net();
        let a = net.init_params(7, 0.5);
        let b = net.init_params(7, 0.5);
        assert_eq!(a, b);
        let c = net.init_params(8, 0.5);
        assert_ne!(a, c);
        for w in a.iter().flatten() {
            assert!(w.to_f64().abs() <= 0.5);
        }
    }

    #[test]
    fn empty_network_rejected() {
        assert_eq!(
            NetworkSpec::new(Shape::new(1, 4, 4), vec![]).unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn bad_geometry_reports_layer() {
        let err = NetworkSpec::new(
            Shape::new(1, 4, 4),
            vec![
                LayerSpec::AvgPool { size: 2 },
                LayerSpec::conv(1, 5, Activation::ReLU), // 5x5 kernel on 2x2
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            NetworkError::BadGeometry {
                layer: 1,
                input: Shape::new(1, 2, 2)
            }
        );
        assert!(err.to_string().contains("layer 1"));
    }
}
