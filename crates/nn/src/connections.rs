//! The canonical connection ordering.
//!
//! For every output neuron, the PNG walks its input connections in a fixed
//! order — the paper's middle FSM loop ("a loop across all connections for
//! single neuron", §IV-B). The functional executor and the cycle-level
//! simulator both enumerate connections through *this* module, which is what
//! makes bit-exact cross-validation possible: same operands, same order,
//! same MAC semantics.
//!
//! Orderings:
//!
//! * **Conv / pool**: row-major over the kernel window, `(ky, kx)` with `ky`
//!   outer; for [`ConvConnectivity::AllMaps`] the input channel is the
//!   outermost index `(ic, ky, kx)`.
//! * **Fully connected**: flat input index order `0..n_in`.

use crate::layer::{ConvConnectivity, LayerSpec, Shape};
use neurocube_fixed::Q88;

/// Where the weight of one connection comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightRef {
    /// Index into the layer's stored weight array.
    Stored(usize),
    /// An implicit constant (average pooling's `1/size²`).
    Const(Q88),
}

/// One resolved connection of one output neuron.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Connection {
    /// Flat index of the connected input neuron.
    pub input_index: usize,
    /// The synaptic weight for this connection.
    pub weight: WeightRef,
}

/// Decomposes a flat output-neuron index into `(channel, y, x)` for the
/// given output shape.
#[inline]
pub fn neuron_coords(out_shape: Shape, flat: usize) -> (usize, usize, usize) {
    debug_assert!(flat < out_shape.len());
    let plane = out_shape.height * out_shape.width;
    let c = flat / plane;
    let rem = flat % plane;
    (c, rem / out_shape.width, rem % out_shape.width)
}

/// Resolves connection `k` (in canonical order) of output neuron `neuron`
/// (flat index) for `layer` applied to `in_shape`.
///
/// This is exactly the address computation the PNG performs per §IV-B
/// (Eqs. 4–5), generalized with channel strides.
///
/// # Panics
///
/// Panics in debug builds if `neuron` or `k` is out of range or the layer
/// does not fit `in_shape`.
pub fn resolve(layer: &LayerSpec, in_shape: Shape, neuron: usize, k: usize) -> Connection {
    let out_shape = layer
        .output_shape(in_shape)
        .expect("layer must fit the input shape");
    debug_assert!(k < layer.connections_per_neuron(in_shape));
    let (oc, oy, ox) = neuron_coords(out_shape, neuron);
    match *layer {
        LayerSpec::Conv2d {
            kernel,
            stride,
            connectivity,
            ..
        } => {
            let (ic, ky, kx, widx) = match connectivity {
                ConvConnectivity::SingleMap => {
                    let ky = k / kernel;
                    let kx = k % kernel;
                    (oc % in_shape.channels, ky, kx, oc * kernel * kernel + k)
                }
                ConvConnectivity::AllMaps => {
                    let per_map = kernel * kernel;
                    let ic = k / per_map;
                    let r = k % per_map;
                    (
                        ic,
                        r / kernel,
                        r % kernel,
                        oc * in_shape.channels * per_map + k,
                    )
                }
            };
            // Eq. 4: targ = cur*stride + kernel offset.
            let iy = oy * stride + ky;
            let ix = ox * stride + kx;
            // Eq. 5 with a channel stride: flat input address.
            let input_index = (ic * in_shape.height + iy) * in_shape.width + ix;
            Connection {
                input_index,
                weight: WeightRef::Stored(widx),
            }
        }
        LayerSpec::AvgPool { size } => {
            let ky = k / size;
            let kx = k % size;
            let iy = oy * size + ky;
            let ix = ox * size + kx;
            let input_index = (oc * in_shape.height + iy) * in_shape.width + ix;
            Connection {
                input_index,
                weight: WeightRef::Const(Q88::from_f64(1.0 / (size * size) as f64)),
            }
        }
        LayerSpec::FullyConnected { .. } => Connection {
            input_index: k,
            weight: WeightRef::Stored(neuron * in_shape.len() + k),
        },
        LayerSpec::Eltwise { terms, .. } => {
            // Term `k` of output channel `oc` reads input channel
            // `oc + k·C_out` at the same spatial position, with an
            // implicit unit weight (the sum of the stacked operands).
            let out_channels = in_shape.channels / terms;
            let ic = oc + k * out_channels;
            let input_index = (ic * in_shape.height + oy) * in_shape.width + ox;
            Connection {
                input_index,
                weight: WeightRef::Const(Q88::ONE),
            }
        }
    }
}

/// Materializes the weight value of a connection given the layer's stored
/// weight array.
#[inline]
pub fn weight_value(conn: Connection, weights: &[Q88]) -> Q88 {
    match conn.weight {
        WeightRef::Stored(i) => weights[i],
        WeightRef::Const(q) => q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurocube_fixed::Activation;

    #[test]
    fn coords_roundtrip() {
        let s = Shape::new(3, 4, 5);
        for flat in 0..s.len() {
            let (c, y, x) = neuron_coords(s, flat);
            assert_eq!((c * s.height + y) * s.width + x, flat);
        }
    }

    #[test]
    fn conv_single_map_window() {
        // 1-channel 5x5 input, 3x3 kernel -> 3x3 output.
        let in_shape = Shape::new(1, 5, 5);
        let layer = LayerSpec::conv(1, 3, Activation::Identity);
        // Output neuron (0, 1, 2): window rows 1..4, cols 2..5.
        let neuron = 3 + 2;
        let expected: Vec<usize> = (1..4)
            .flat_map(|y| (2..5).map(move |x| y * 5 + x))
            .collect();
        let got: Vec<usize> = (0..9)
            .map(|k| resolve(&layer, in_shape, neuron, k).input_index)
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn conv_single_map_selects_input_map_round_robin() {
        let in_shape = Shape::new(2, 4, 4);
        let layer = LayerSpec::conv(4, 3, Activation::Identity);
        let out_shape = layer.output_shape(in_shape).unwrap();
        let plane = out_shape.height * out_shape.width;
        // Output map 3 reads input map 3 % 2 = 1.
        let conn = resolve(&layer, in_shape, 3 * plane, 0);
        assert!(conn.input_index >= in_shape.height * in_shape.width);
        // Output map 2 reads input map 0.
        let conn = resolve(&layer, in_shape, 2 * plane, 0);
        assert!(conn.input_index < in_shape.height * in_shape.width);
    }

    #[test]
    fn conv_all_maps_spans_channels() {
        let in_shape = Shape::new(3, 4, 4);
        let layer = LayerSpec::Conv2d {
            out_channels: 1,
            kernel: 3,
            stride: 1,
            connectivity: ConvConnectivity::AllMaps,
            activation: Activation::Identity,
        };
        let idxs: Vec<usize> = (0..27)
            .map(|k| resolve(&layer, in_shape, 0, k).input_index)
            .collect();
        // First 9 in channel 0, next 9 in channel 1, last 9 in channel 2.
        assert!(idxs[0..9].iter().all(|&i| i < 16));
        assert!(idxs[9..18].iter().all(|&i| (16..32).contains(&i)));
        assert!(idxs[18..27].iter().all(|&i| (32..48).contains(&i)));
        // Weight indices are the canonical 0..27 for output map 0.
        for (k, idx) in idxs.iter().enumerate() {
            let _ = idx;
            assert_eq!(resolve(&layer, in_shape, 0, k).weight, WeightRef::Stored(k));
        }
    }

    #[test]
    fn pool_uses_constant_weight() {
        let in_shape = Shape::new(1, 4, 4);
        let layer = LayerSpec::AvgPool { size: 2 };
        let conn = resolve(&layer, in_shape, 0, 3);
        assert_eq!(conn.input_index, 5); // (1,1) of the top-left window
        assert_eq!(conn.weight, WeightRef::Const(Q88::from_f64(0.25)));
        assert_eq!(weight_value(conn, &[]), Q88::from_f64(0.25));
    }

    #[test]
    fn pool_windows_do_not_overlap() {
        let in_shape = Shape::new(1, 4, 4);
        let layer = LayerSpec::AvgPool { size: 2 };
        let mut seen = std::collections::HashSet::new();
        for neuron in 0..4 {
            for k in 0..4 {
                assert!(seen.insert(resolve(&layer, in_shape, neuron, k).input_index));
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn fc_walks_inputs_in_order_with_row_major_weights() {
        let in_shape = Shape::new(2, 2, 2); // 8 inputs
        let layer = LayerSpec::fc(3, Activation::Identity);
        for j in 0..3 {
            for k in 0..8 {
                let c = resolve(&layer, in_shape, j, k);
                assert_eq!(c.input_index, k);
                assert_eq!(c.weight, WeightRef::Stored(j * 8 + k));
            }
        }
    }

    #[test]
    fn eltwise_sums_channel_groups() {
        // (4, 2, 2) input, 2 terms -> (2, 2, 2) output: output (c, y, x)
        // reads input channels c and c + 2 at (y, x) with unit weights.
        let in_shape = Shape::new(4, 2, 2);
        let layer = LayerSpec::add(2, Activation::Identity);
        for neuron in 0..8 {
            let (oc, oy, ox) = neuron_coords(Shape::new(2, 2, 2), neuron);
            for k in 0..2 {
                let conn = resolve(&layer, in_shape, neuron, k);
                assert_eq!(
                    conn.input_index,
                    ((oc + 2 * k) * 2 + oy) * 2 + ox,
                    "neuron {neuron} term {k}"
                );
                assert_eq!(conn.weight, WeightRef::Const(Q88::ONE));
            }
        }
    }

    #[test]
    fn strided_conv_addresses() {
        let in_shape = Shape::new(1, 5, 5);
        let layer = LayerSpec::Conv2d {
            out_channels: 1,
            kernel: 3,
            stride: 2,
            connectivity: ConvConnectivity::SingleMap,
            activation: Activation::Identity,
        };
        // Output (0,1,1) window starts at input (2,2).
        let conn = resolve(&layer, in_shape, 2 + 1, 0);
        assert_eq!(conn.input_index, 2 * 5 + 2);
    }
}
