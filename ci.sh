#!/usr/bin/env bash
# Tier-1 CI gate: build, test, format, lint. Run from the repo root.
#
#   ci.sh          - standard gate; property tests run a pinned 64-case
#                    budget so the differential suites are deterministic
#                    in wall-clock terms. (Includes the skip-equivalence
#                    property suite: skipping vs naive loop, bitwise.)
#   ci.sh --fuzz   - same gate, then a deeper randomized sweep of the
#                    property/differential suites (512 cases each).
#   ci.sh --faults - same gate, then the fault suites at depth: the
#                    fault-determinism fuzz (malformed packets/tags into
#                    lenient components) and the fault-mode
#                    skip-equivalence properties at 512 cases each. The
#                    standard gate already runs both at the pinned
#                    64-case budget via `cargo test`.
#   ci.sh --bench  - same gate, then the simulator wall-clock benchmark
#                    (fig. 14/15 sweep shapes, BENCH_sim.json). Fails if
#                    the skipping loop's geomean throughput over the
#                    sweep falls below 4.5x the pinned seed baseline's
#                    naive loop — the wall-clock regression guard — or if
#                    skip mode regresses vs the same-binary naive loop
#                    (per-workload min 0.90x, sweep geomean 1.0x). The
#                    sparsity/hot-path work measures 4.8-5.1x geomean
#                    run-to-run on the reference container (per-workload
#                    bests imply ~5.2x); the enforced floor sits at 4.5x
#                    because sub-second workloads jitter ±15%
#                    individually and the aggregate ±5% run-to-run.
#   ci.sh --simd   - same gate, then the datapath equivalence suites at
#                    depth (scalar vs SoA vs stage-parallel, with and
#                    without faults, plus the lane-kernel boundary
#                    properties — 512 cases each) and the wall-clock
#                    benchmark under the speedup gate. The standard gate
#                    already runs the suite at the pinned 32-case budget.
#   ci.sh --sparsity - same gate, then the sparsity-equivalence suites at
#                    depth (sparsity on/off full-registry bitwise
#                    identity on zero-seeded nets, with and without
#                    faults, plus the zero-weight lane-purity kernel
#                    property — 512 cases, inside simd_equivalence) and
#                    the sparsity sweep benchmark (BENCH_sparsity.json),
#                    whose built-in gates require bitwise on/off identity
#                    at every density point and monotonically growing
#                    gated lane-cycles / saved pJ as density drops. The
#                    standard gate already runs the suite at the pinned
#                    32-case budget.
#   ci.sh --serve  - same gate, then the serving-layer suites at depth
#                    (scheduler-vs-oracle, determinism, malformed fuzz at
#                    512 cases each) and the serving load benchmark
#                    (BENCH_serve.json), whose built-in sanity gates
#                    require a finite p99 under underload and a nonzero
#                    shed rate at 2x saturation. The standard gate already
#                    runs the serve suites at the pinned 32-case budget.
#   ci.sh --compile - same gate, then the graph-compiler suites at depth
#                    (DAG equivalence + DAG differential properties, 512
#                    cases each) and the pipelining benchmark
#                    (BENCH_pipeline.json), whose built-in gate requires
#                    compiled-pipelined cycles strictly below per-layer
#                    replay on every multi-phase workload. The standard
#                    gate already runs both suites at the pinned 32-case
#                    budget.
#   ci.sh --twospeed - same gate, then the two-speed audit suites at
#                    depth (audit-sampler purity and defect-catching
#                    properties at 512 cases, plus the histogram and
#                    env-knob edge suites) and the two-speed benchmark
#                    (BENCH_twospeed.json): 10^6 requests per scenario on
#                    the analytical path, with built-in hard gates — zero
#                    envelope violations at every audit rate, a bitwise
#                    identical audited subset across serial/threaded/
#                    rerun, and >=100x analytical speedup over full
#                    replay. The standard gate already runs the audit
#                    property suite at the pinned 32-case budget.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
PROPTEST_CASES=64 cargo test -q
# Fault, serving and graph-compiler suites at their own pinned budget:
# malformed-input fuzzing of the lenient paths, the fault-mode
# skip-equivalence properties, the scheduler-vs-oracle serving
# properties, and the DAG equivalence/differential properties.
PROPTEST_CASES=32 cargo test -q \
    -p neurocube-integration-tests --test fault_fuzz --test skip_equivalence
# Datapath equivalence: the SoA lane kernels and the stage-parallel PE
# tick against the per-lane scalar oracle, full-registry bitwise.
PROPTEST_CASES=32 cargo test -q \
    -p neurocube-integration-tests --test simd_equivalence
PROPTEST_CASES=32 cargo test -q \
    -p neurocube-integration-tests --test graph_equivalence --test graph_differential
PROPTEST_CASES=32 cargo test -q \
    -p neurocube-serve --test serve_properties
# Two-speed audit properties (sampler purity, defect catching) at the
# same pinned budget; the env-knob suite rides along because it shares
# the process-global EnvGuard with these binaries.
PROPTEST_CASES=32 cargo test -q \
    -p neurocube-integration-tests --test twospeed_audit --test env_knobs
cargo fmt --check
cargo clippy --workspace -- -D warnings
# Doc gate over our own crates (the vendored dev-deps are exempt).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet \
    --exclude proptest --exclude rand --exclude criterion

if [[ "${1:-}" == "--fuzz" ]]; then
    echo "== fuzz sweep (PROPTEST_CASES=512) =="
    PROPTEST_CASES=512 cargo test -q --release \
        -p neurocube-fixed \
        -p neurocube-dram \
        -p neurocube-noc \
        -p neurocube-golden \
        -p neurocube-integration-tests
fi

if [[ "${1:-}" == "--faults" ]]; then
    echo "== fault suites (PROPTEST_CASES=512) =="
    PROPTEST_CASES=512 cargo test -q --release \
        -p neurocube-integration-tests --test fault_fuzz --test skip_equivalence
fi

if [[ "${1:-}" == "--bench" ]]; then
    echo "== simulator wall-clock benchmark (gate: 4.5x vs seed baseline) =="
    NEUROCUBE_BENCH_MIN_SPEEDUP="${NEUROCUBE_BENCH_MIN_SPEEDUP:-4.5}" \
        cargo bench -p neurocube-bench --bench bench_sim
fi

if [[ "${1:-}" == "--simd" ]]; then
    echo "== datapath equivalence suites (PROPTEST_CASES=512) =="
    PROPTEST_CASES=512 cargo test -q --release \
        -p neurocube-integration-tests --test simd_equivalence
    PROPTEST_CASES=512 cargo test -q --release -p neurocube-fixed
    echo "== simulator wall-clock benchmark (gate: 4.5x vs seed baseline) =="
    NEUROCUBE_BENCH_MIN_SPEEDUP="${NEUROCUBE_BENCH_MIN_SPEEDUP:-4.5}" \
        cargo bench -p neurocube-bench --bench bench_sim
fi

if [[ "${1:-}" == "--sparsity" ]]; then
    echo "== sparsity equivalence suites (PROPTEST_CASES=512) =="
    PROPTEST_CASES=512 cargo test -q --release \
        -p neurocube-integration-tests --test simd_equivalence
    echo "== sparsity sweep (gates: bitwise on/off identity, monotone savings vs density) =="
    cargo bench -p neurocube-bench --bench sparsity_sweep
fi

if [[ "${1:-}" == "--serve" ]]; then
    echo "== serving suites (PROPTEST_CASES=512) =="
    PROPTEST_CASES=512 cargo test -q --release \
        -p neurocube-serve --test serve_properties
    cargo test -q --release \
        -p neurocube-integration-tests --test serve_system
    echo "== serving load benchmark (gates: finite p99 underloaded, shed > 0 at 2x) =="
    cargo bench -p neurocube-bench --bench serve_load
fi

if [[ "${1:-}" == "--compile" ]]; then
    echo "== graph-compiler suites (PROPTEST_CASES=512) =="
    PROPTEST_CASES=512 cargo test -q --release \
        -p neurocube-integration-tests --test graph_equivalence --test graph_differential
    echo "== pipelining benchmark (gate: pipelined < replay on every multi-phase workload) =="
    cargo bench -p neurocube-bench --bench pipeline_bench
fi

if [[ "${1:-}" == "--twospeed" ]]; then
    echo "== two-speed audit suites (PROPTEST_CASES=512) =="
    PROPTEST_CASES=512 cargo test -q --release \
        -p neurocube-integration-tests --test twospeed_audit --test env_knobs
    cargo test -q --release -p neurocube-sim --test histogram_edge
    echo "== two-speed benchmark (gates: zero violations, bitwise audits, >=100x speedup) =="
    cargo bench -p neurocube-bench --bench twospeed_load
fi
