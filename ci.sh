#!/usr/bin/env bash
# Tier-1 CI gate: build, test, format, lint. Run from the repo root.
#
#   ci.sh          - standard gate; property tests run a pinned 64-case
#                    budget so the differential suites are deterministic
#                    in wall-clock terms.
#   ci.sh --fuzz   - same gate, then a deeper randomized sweep of the
#                    property/differential suites (512 cases each).
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
PROPTEST_CASES=64 cargo test -q
cargo fmt --check
cargo clippy --workspace -- -D warnings

if [[ "${1:-}" == "--fuzz" ]]; then
    echo "== fuzz sweep (PROPTEST_CASES=512) =="
    PROPTEST_CASES=512 cargo test -q --release \
        -p neurocube-fixed \
        -p neurocube-dram \
        -p neurocube-noc \
        -p neurocube-golden \
        -p neurocube-integration-tests
fi
